//! The symbolic formulation of the scheduling problem — a faithful port of
//! the paper's Sec. IV: variables V1–V3, constraints C1–C6, plus the
//! constraints the paper omits "for brevity" (AOD row ordering, the load
//! analog of Eq. 20, the vertical analog of Eq. 21) and one soundness
//! addition (no spurious CZs; see DESIGN.md §4.2).
//!
//! The formulation is compiled onto the finite-domain SMT layer
//! (`nasp-smt`), replacing the paper's use of Z3 (DESIGN.md §3).
//!
//! Two front-ends share one constraint emitter:
//!
//! * [`Encoding`] — the *scratch* encoding for a fixed stage count `S`,
//!   exactly the paper's per-`S` instance. Every [`Encoding::build`] is a
//!   cold solver.
//! * [`IncrementalEncoding`] — *one* encoding per problem for the whole
//!   iterative-deepening sweep (DESIGN.md §7). Stages are allocated lazily;
//!   the constraints tied to a specific stage count (all gates done, final
//!   stage executes) are guarded behind per-`S` selector literals and
//!   activated via solver assumptions, so learnt clauses, variable
//!   activities and saved phases stay warm from `S` to `S + 1` and across
//!   transfer-tightening steps.
//!
//! The split is sound because everything the shared emitter asserts is
//! *prefix-closed*: per-stage constraints mention one stage, transition
//! constraints mention a consecutive pair, and any satisfying prefix of
//! `S` stages extends to allocated trailing stages by freezing every qubit
//! in place and making the trailing stages transfer stages with no
//! load/store flags set. Decoding therefore reads only the active prefix.

use std::collections::HashMap;

use nasp_arch::{Position, QubitState, Schedule, Stage, StageKind, TransferFlags, Trap};
use nasp_smt::{Bool, Budget, Ctx, CubeSplit, IntVar, LookaheadConfig, SolveResult, SolverConfig};

use crate::problem::Problem;

/// Encoding options (strengthenings, symmetry breaking, and the
/// configuration of the SAT solver beneath the compiled instance).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EncodeOptions {
    /// Assert that the first and last stages are execution stages. Safe for
    /// minimality: initial placement is free, so a leading transfer stage
    /// can be folded into the initial configuration, and a trailing
    /// transfer stage does no work.
    pub force_exec_boundary: bool,
    /// Require every execution stage to execute at least one gate (a beam
    /// without gates only adds error). Toggled by ablation A1.
    pub nonempty_exec: bool,
    /// Tuning of the SAT solver the encoding compiles onto. The default is
    /// the deterministic reference configuration; portfolio workers get
    /// diversified variants ([`SolverConfig::diversified`]).
    pub solver: SolverConfig,
}

impl Default for EncodeOptions {
    fn default() -> Self {
        EncodeOptions {
            force_exec_boundary: true,
            nonempty_exec: true,
            solver: SolverConfig::default(),
        }
    }
}

/// The shared symbolic substrate: variables and constraints for the stages
/// allocated so far, extensible one stage at a time.
///
/// Everything asserted here is independent of the final stage count; the
/// front-ends add the count-specific constraints (unconditionally for the
/// scratch [`Encoding`], selector-guarded for [`IncrementalEncoding`]).
struct Core {
    ctx: Ctx,
    problem: Problem,
    opts: EncodeOptions,
    /// Upper bound on stages (fixes the `g` domains at creation).
    stage_cap: usize,
    /// Stages allocated so far.
    stages: usize,
    // V1: per qubit, per stage (`x[q][t]`).
    x: Vec<Vec<IntVar>>,
    y: Vec<Vec<IntVar>>,
    h: Vec<Vec<IntVar>>,
    v: Vec<Vec<IntVar>>,
    a: Vec<Vec<Bool>>,
    c: Vec<Vec<IntVar>>,
    r: Vec<Vec<IntVar>>,
    // V2: per gate / per stage.
    g: Vec<IntVar>,
    e: Vec<Bool>,
    // V3: per AOD line, per stage (`cs[line][t]`).
    cs: Vec<Vec<Bool>>,
    cl: Vec<Vec<Bool>>,
    rs: Vec<Vec<Bool>>,
    rl: Vec<Vec<Bool>>,
    /// Sequential transfer counter: `at_least[t][j]` ⇔ at least `j + 1` of
    /// the stages `0..=t` are transfer stages. Full width, so "at most `k`
    /// transfers within the first `S` stages" is the single literal
    /// `¬at_least[S-1][k]` — usable as an assumption (no new clauses per
    /// tightening step).
    at_least: Vec<Vec<Bool>>,
    /// Per-qubit gate index lists (for Eq. 14).
    gates_of: Vec<Vec<usize>>,
    /// Gate index pairs sharing a qubit (for Eq. 13).
    conflicting_gates: Vec<(usize, usize)>,
    /// Stage kinds (`true` = Rydberg) of a phase-hint schedule, retained so
    /// lazily allocated stages get their `e[t]` polarity seeded at
    /// creation. Empty when no hint was supplied.
    phase_hint_kinds: Vec<bool>,
}

impl Core {
    fn new(problem: &Problem, stage_cap: usize, opts: EncodeOptions) -> Self {
        problem.config.validate().expect("valid architecture");
        assert!(
            stage_cap > 0 || problem.gates.is_empty(),
            "need at least one stage to execute gates"
        );
        let mut ctx = Ctx::with_config(opts.solver);
        let n = problem.num_qubits;
        let cfg = &problem.config;
        let g: Vec<IntVar> = (0..problem.gates.len())
            .map(|i| ctx.int_var(0, stage_cap as i64 - 1, &format!("g_{i}")))
            .collect();
        let gates_of: Vec<Vec<usize>> = (0..n).map(|q| problem.gates_of(q)).collect();
        let mut conflicting_gates = Vec::new();
        for i in 0..problem.gates.len() {
            for j in (i + 1)..problem.gates.len() {
                let (a1, b1) = problem.gates[i];
                let (a2, b2) = problem.gates[j];
                if a1 == a2 || a1 == b2 || b1 == a2 || b1 == b2 {
                    conflicting_gates.push((i, j));
                }
            }
        }
        Core {
            ctx,
            problem: problem.clone(),
            opts,
            stage_cap,
            stages: 0,
            x: vec![Vec::new(); n],
            y: vec![Vec::new(); n],
            h: vec![Vec::new(); n],
            v: vec![Vec::new(); n],
            a: vec![Vec::new(); n],
            c: vec![Vec::new(); n],
            r: vec![Vec::new(); n],
            g,
            e: Vec::new(),
            cs: vec![Vec::new(); cfg.c_max as usize + 1],
            cl: vec![Vec::new(); cfg.c_max as usize + 1],
            rs: vec![Vec::new(); cfg.r_max as usize + 1],
            rl: vec![Vec::new(); cfg.r_max as usize + 1],
            at_least: Vec::new(),
            gates_of,
            conflicting_gates,
            phase_hint_kinds: Vec::new(),
        }
    }

    /// Seeds solver phase polarity from a known-valid schedule (the
    /// heuristic's): each gate's stage variable `g_i` is steered toward the
    /// Rydberg stage that executes it in the hint, and each execution flag
    /// `e_t` toward the hint's stage kind — so the first descent of a SAT
    /// round starts adjacent to a known solution instead of at the default
    /// polarity. Stage kinds are retained so stages allocated later (the
    /// incremental encoding is lazy) get seeded at creation.
    ///
    /// Purely a decision-order hint (see [`nasp_sat::Solver::seed_phases`]);
    /// a no-op when the solver config's phase-seeding policy is off.
    fn seed_from_schedule(&mut self, hint: &Schedule) {
        let mut stage_of: HashMap<(usize, usize), usize> = HashMap::new();
        for t in 0..hint.stages.len() {
            for (a, b) in hint.executed_pairs(t) {
                stage_of.insert((a, b), t);
            }
        }
        for (i, &(a, b)) in self.problem.gates.iter().enumerate() {
            let key = (a.min(b), a.max(b));
            if let Some(&t) = stage_of.get(&key) {
                // `seed_int_phase` clamps into the `g_i` domain, so a hint
                // stage beyond the cap degrades to "as late as possible".
                self.ctx.seed_int_phase(self.g[i], t as i64);
            }
        }
        self.phase_hint_kinds = hint.stages.iter().map(|s| s.is_rydberg()).collect();
        for t in 0..self.stages.min(self.phase_hint_kinds.len()) {
            let (et, kind) = (self.e[t], self.phase_hint_kinds[t]);
            self.ctx.seed_bool_phase(et, kind);
        }
    }

    /// Allocates stage `t = self.stages` and asserts every constraint that
    /// mentions it: per-stage (C1–C3), the transition from `t − 1` (C4–C6),
    /// and the gate-execution prerequisites of Eq. 12 at `t`. (The transfer
    /// counter extends separately, on first demand.)
    fn push_stage(&mut self) {
        let t = self.stages;
        assert!(t < self.stage_cap, "stage count beyond the encoding cap");
        let n = self.problem.num_qubits;
        let cfg = &self.problem.config;
        let (x_max, y_max, h_max, v_max, c_max, r_max) = (
            cfg.x_max, cfg.y_max, cfg.h_max, cfg.v_max, cfg.c_max, cfg.r_max,
        );
        for q in 0..n {
            let xv = self.ctx.int_var(0, x_max, &format!("x_{q}_{t}"));
            self.x[q].push(xv);
            let yv = self.ctx.int_var(0, y_max, &format!("y_{q}_{t}"));
            self.y[q].push(yv);
            let hv = self.ctx.int_var(-h_max, h_max, &format!("h_{q}_{t}"));
            self.h[q].push(hv);
            let vv = self.ctx.int_var(-v_max, v_max, &format!("v_{q}_{t}"));
            self.v[q].push(vv);
            let cv = self.ctx.int_var(0, c_max, &format!("c_{q}_{t}"));
            self.c[q].push(cv);
            let rv = self.ctx.int_var(0, r_max, &format!("r_{q}_{t}"));
            self.r[q].push(rv);
            let av = self.ctx.bool_var();
            self.a[q].push(av);
        }
        for k in 0..self.cs.len() {
            let b = self.ctx.bool_var();
            self.cs[k].push(b);
            let b = self.ctx.bool_var();
            self.cl[k].push(b);
        }
        for k in 0..self.rs.len() {
            let b = self.ctx.bool_var();
            self.rs[k].push(b);
            let b = self.ctx.bool_var();
            self.rl[k].push(b);
        }
        let ev = self.ctx.bool_var();
        self.e.push(ev);
        if t < self.phase_hint_kinds.len() {
            let kind = self.phase_hint_kinds[t];
            self.ctx.seed_bool_phase(ev, kind);
        }
        self.stages = t + 1;

        self.assert_stage(t);
        self.assert_gate_prereqs(t);
        if t > 0 {
            self.assert_transition(t - 1);
        }
        // Symmetry breaking: the first stage of *any* active prefix is an
        // execution stage.
        if t == 0 && self.opts.force_exec_boundary && !self.problem.gates.is_empty() {
            let e0 = self.e[0];
            self.ctx.assert(e0);
        }
    }

    /// `y` of qubit `q` lies in the entangling zone at stage `t`.
    fn in_zone(&mut self, q: usize, t: usize) -> Bool {
        let cfg = &self.problem.config;
        let (e_min, e_max) = (cfg.e_min, cfg.e_max);
        let yv = self.y[q][t];
        self.ctx.in_range(yv, e_min, e_max)
    }

    /// Proximity predicate of Eq. 12: same site and offsets within radius.
    fn near(&mut self, q1: usize, q2: usize, t: usize) -> Bool {
        let rad = self.problem.config.radius;
        let ex = self.ctx.eq(self.x[q1][t], self.x[q2][t]);
        let ey = self.ctx.eq(self.y[q1][t], self.y[q2][t]);
        let dh = self.ctx.abs_diff_lt(self.h[q1][t], self.h[q2][t], rad);
        let dv = self.ctx.abs_diff_lt(self.v[q1][t], self.v[q2][t], rad);
        self.ctx.and(&[ex, ey, dh, dv])
    }

    /// Lexicographic physical-x comparison `(x, h)_q1 < (x, h)_q2` at `t`.
    fn x_lex_lt(&mut self, q1: usize, q2: usize, t: usize) -> Bool {
        let lt_x = self.ctx.lt(self.x[q1][t], self.x[q2][t]);
        let eq_x = self.ctx.eq(self.x[q1][t], self.x[q2][t]);
        let lt_h = self.ctx.lt(self.h[q1][t], self.h[q2][t]);
        let tie = self.ctx.and(&[eq_x, lt_h]);
        self.ctx.or(&[lt_x, tie])
    }

    /// Lexicographic physical-y comparison `(y, v)_q1 < (y, v)_q2` at `t`.
    fn y_lex_lt(&mut self, q1: usize, q2: usize, t: usize) -> Bool {
        let lt_y = self.ctx.lt(self.y[q1][t], self.y[q2][t]);
        let eq_y = self.ctx.eq(self.y[q1][t], self.y[q2][t]);
        let lt_v = self.ctx.lt(self.v[q1][t], self.v[q2][t]);
        let tie = self.ctx.and(&[eq_y, lt_v]);
        self.ctx.or(&[lt_y, tie])
    }

    /// Disjunction `⋁_i (g_i = t)` over the given gate indices.
    fn some_gate_at(&mut self, gates: &[usize], t: usize) -> Vec<Bool> {
        gates
            .iter()
            .map(|&i| self.ctx.eq_const(self.g[i], t as i64))
            .collect()
    }

    /// Flag lookup over a stage column: `⋁_k (line = k ∧ col[k])`.
    fn line_flag(&mut self, line: IntVar, col: &[Bool]) -> Bool {
        let parts: Vec<Bool> = col
            .iter()
            .enumerate()
            .map(|(k, &flag)| {
                let isk = self.ctx.eq_const(line, k as i64);
                self.ctx.and(&[isk, flag])
            })
            .collect();
        self.ctx.or(&parts)
    }

    /// Per-stage constraints of stage `t` (C1, C2, the no-spurious-CZ
    /// soundness clause, C3's shielding of idlers, and the optional
    /// nonempty-execution strengthening).
    fn assert_stage(&mut self, t: usize) {
        let n = self.problem.num_qubits;
        let shielded = self.problem.config.has_storage();

        for q in 0..n {
            // C1, Eq. 10: SLM qubits sit at site centers.
            let aq = self.a[q][t];
            let h0 = self.ctx.eq_const(self.h[q][t], 0);
            let v0 = self.ctx.eq_const(self.v[q][t], 0);
            self.ctx.assert_or(&[aq, h0]);
            self.ctx.assert_or(&[aq, v0]);
        }

        for q1 in 0..n {
            for q2 in (q1 + 1)..n {
                // C1, Eq. 9: equal offsets force distinct sites.
                let eh = self.ctx.eq(self.h[q1][t], self.h[q2][t]);
                let ev = self.ctx.eq(self.v[q1][t], self.v[q2][t]);
                let ex = self.ctx.eq(self.x[q1][t], self.x[q2][t]);
                let ey = self.ctx.eq(self.y[q1][t], self.y[q2][t]);
                self.ctx.assert_or(&[!eh, !ev, !ex, !ey]);

                // C2, Eq. 11 (+ row analog): AOD line order follows
                // physical order.
                let a1 = self.a[q1][t];
                let a2 = self.a[q2][t];
                let xlt = self.x_lex_lt(q1, q2, t);
                let xgt = self.x_lex_lt(q2, q1, t);
                let clt = self.ctx.lt(self.c[q1][t], self.c[q2][t]);
                let cgt = self.ctx.lt(self.c[q2][t], self.c[q1][t]);
                self.ctx.assert_or(&[!a1, !a2, !clt, xlt]);
                self.ctx.assert_or(&[!a1, !a2, clt, !xlt]);
                self.ctx.assert_or(&[!a1, !a2, !cgt, xgt]);
                self.ctx.assert_or(&[!a1, !a2, cgt, !xgt]);
                let ylt = self.y_lex_lt(q1, q2, t);
                let ygt = self.y_lex_lt(q2, q1, t);
                let rlt = self.ctx.lt(self.r[q1][t], self.r[q2][t]);
                let rgt = self.ctx.lt(self.r[q2][t], self.r[q1][t]);
                self.ctx.assert_or(&[!a1, !a2, !rlt, ylt]);
                self.ctx.assert_or(&[!a1, !a2, rlt, !ylt]);
                self.ctx.assert_or(&[!a1, !a2, !rgt, ygt]);
                self.ctx.assert_or(&[!a1, !a2, rgt, !ygt]);

                // Soundness: a near pair inside the entangling zone at
                // an execution stage must BE a scheduled gate.
                let near = self.near(q1, q2, t);
                let z1 = self.in_zone(q1, t);
                let z2 = self.in_zone(q2, t);
                let pair_gates: Vec<usize> = self
                    .problem
                    .gates
                    .iter()
                    .enumerate()
                    .filter(|(_, &(ga, gb))| (ga, gb) == (q1, q2))
                    .map(|(i, _)| i)
                    .collect();
                let mut clause = vec![!self.e[t], !near, !z1, !z2];
                clause.extend(self.some_gate_at(&pair_gates, t));
                self.ctx.assert_or(&clause);
            }
        }

        // C3, Eq. 14: shielding of idling qubits. (`take`/restore instead
        // of cloning the index just to appease the borrow checker.)
        for q in 0..n {
            let q_gates = std::mem::take(&mut self.gates_of[q]);
            let gate_disj = self.some_gate_at(&q_gates, t);
            self.gates_of[q] = q_gates;
            if shielded {
                let z = self.in_zone(q, t);
                let mut clause = vec![!self.e[t], !z];
                clause.extend(gate_disj);
                self.ctx.assert_or(&clause);
            } else {
                // Footnote 2: idling qubits sit in interaction sites not
                // shared with any other qubit.
                for q2 in 0..n {
                    if q2 == q {
                        continue;
                    }
                    let ex = self.ctx.eq(self.x[q][t], self.x[q2][t]);
                    let ey = self.ctx.eq(self.y[q][t], self.y[q2][t]);
                    let mut clause = vec![!self.e[t], !ex, !ey];
                    clause.extend(gate_disj.iter().copied());
                    self.ctx.assert_or(&clause);
                }
            }
        }

        // Optional strengthening: execution stages execute something.
        if self.opts.nonempty_exec {
            let all: Vec<usize> = (0..self.problem.gates.len()).collect();
            let mut clause = vec![!self.e[t]];
            clause.extend(self.some_gate_at(&all, t));
            self.ctx.assert_or(&clause);
        }
    }

    /// C3, Eq. 12 at stage `t`: gate execution prerequisites; plus Eq. 13
    /// restricted to `t`: gates sharing a qubit never share a stage.
    /// Emitting Eq. 13 per stage (one binary clause over the value
    /// literals, `¬(g_i = t) ∨ ¬(g_j = t)`) instead of a full-domain
    /// disequality keeps it prefix-closed — and independent of the stage
    /// cap, so the incremental encoding's headroom costs nothing here.
    fn assert_gate_prereqs(&mut self, t: usize) {
        for idx in 0..self.conflicting_gates.len() {
            let (i, j) = self.conflicting_gates[idx];
            let gi = self.ctx.eq_const(self.g[i], t as i64);
            let gj = self.ctx.eq_const(self.g[j], t as i64);
            self.ctx.assert_or(&[!gi, !gj]);
        }
        for i in 0..self.problem.gates.len() {
            let (q1, q2) = self.problem.gates[i];
            let git = self.ctx.eq_const(self.g[i], t as i64);
            let et = self.e[t];
            self.ctx.assert_implies(git, et);
            let ex = self.ctx.eq(self.x[q1][t], self.x[q2][t]);
            self.ctx.assert_implies(git, ex);
            let ey = self.ctx.eq(self.y[q1][t], self.y[q2][t]);
            self.ctx.assert_implies(git, ey);
            let rad = self.problem.config.radius;
            let dh = self.ctx.abs_diff_lt(self.h[q1][t], self.h[q2][t], rad);
            self.ctx.assert_implies(git, dh);
            let dv = self.ctx.abs_diff_lt(self.v[q1][t], self.v[q2][t], rad);
            self.ctx.assert_implies(git, dv);
            let z1 = self.in_zone(q1, t);
            self.ctx.assert_implies(git, z1);
            let z2 = self.in_zone(q2, t);
            self.ctx.assert_implies(git, z2);
        }
    }

    /// Transition constraints (C4–C6) between stages `t` and `t + 1`.
    fn assert_transition(&mut self, t: usize) {
        let n = self.problem.num_qubits;
        let et = self.e[t];
        let cs_col: Vec<Bool> = self.cs.iter().map(|line| line[t]).collect();
        let rs_col: Vec<Bool> = self.rs.iter().map(|line| line[t]).collect();
        let cl_col: Vec<Bool> = self.cl.iter().map(|line| line[t]).collect();
        let rl_col: Vec<Bool> = self.rl.iter().map(|line| line[t]).collect();
        for q in 0..n {
            let a0 = self.a[q][t];
            let a1 = self.a[q][t + 1];
            // C4, Eq. 15: execution stages preserve trap type.
            self.ctx.assert_or(&[!et, !a0, a1]);
            self.ctx.assert_or(&[!et, a0, !a1]);
            // C4, Eq. 16: SLM qubits are static.
            let ex = self.ctx.eq(self.x[q][t], self.x[q][t + 1]);
            let ey = self.ctx.eq(self.y[q][t], self.y[q][t + 1]);
            self.ctx.assert_or(&[!et, a0, ex]);
            self.ctx.assert_or(&[!et, a0, ey]);
            // C4, Eq. 17: AOD qubits keep their lines while shuttling.
            let ec = self.ctx.eq(self.c[q][t], self.c[q][t + 1]);
            let er = self.ctx.eq(self.r[q][t], self.r[q][t + 1]);
            self.ctx.assert_or(&[!et, !a0, ec]);
            self.ctx.assert_or(&[!et, !a0, er]);

            // C5, Eq. 18: storing only at site centers.
            let h0 = self.ctx.eq_const(self.h[q][t], 0);
            let v0 = self.ctx.eq_const(self.v[q][t], 0);
            self.ctx.assert_or(&[et, a1, h0]);
            self.ctx.assert_or(&[et, a1, v0]);
            // C5, Eq. 19: qubits ending in SLM do not move.
            self.ctx.assert_or(&[et, a1, ex]);
            self.ctx.assert_or(&[et, a1, ey]);
            // C5, Eq. 20: store iff a store flag covers the qubit's line.
            let fs_c = self.line_flag(self.c[q][t], &cs_col);
            let fs_r = self.line_flag(self.r[q][t], &rs_col);
            let fs = self.ctx.or(&[fs_c, fs_r]);
            self.ctx.assert_or(&[et, !a0, a1, fs]);
            self.ctx.assert_or(&[et, !a0, !fs, !a1]);
            // C5 (load analog): load iff a load flag covers the new line.
            let fl_c = self.line_flag(self.c[q][t + 1], &cl_col);
            let fl_r = self.line_flag(self.r[q][t + 1], &rl_col);
            let fl = self.ctx.or(&[fl_c, fl_r]);
            self.ctx.assert_or(&[et, a0, !a1, fl]);
            self.ctx.assert_or(&[et, a0, !fl, a1]);
        }
        // C6, Eq. 21 (+ vertical analog): loading preserves relative
        // physical order.
        for q1 in 0..n {
            for q2 in (q1 + 1)..n {
                let a1n = self.a[q1][t + 1];
                let a2n = self.a[q2][t + 1];
                let xlt = self.x_lex_lt(q1, q2, t);
                let xgt = self.x_lex_lt(q2, q1, t);
                let clt = self.ctx.lt(self.c[q1][t + 1], self.c[q2][t + 1]);
                let cgt = self.ctx.lt(self.c[q2][t + 1], self.c[q1][t + 1]);
                self.ctx.assert_or(&[et, !a1n, !a2n, !clt, xlt]);
                self.ctx.assert_or(&[et, !a1n, !a2n, clt, !xlt]);
                self.ctx.assert_or(&[et, !a1n, !a2n, !cgt, xgt]);
                self.ctx.assert_or(&[et, !a1n, !a2n, cgt, !xgt]);
                let ylt = self.y_lex_lt(q1, q2, t);
                let ygt = self.y_lex_lt(q2, q1, t);
                let rlt = self.ctx.lt(self.r[q1][t + 1], self.r[q2][t + 1]);
                let rgt = self.ctx.lt(self.r[q2][t + 1], self.r[q1][t + 1]);
                self.ctx.assert_or(&[et, !a1n, !a2n, !rlt, ylt]);
                self.ctx.assert_or(&[et, !a1n, !a2n, rlt, !ylt]);
                self.ctx.assert_or(&[et, !a1n, !a2n, !rgt, ygt]);
                self.ctx.assert_or(&[et, !a1n, !a2n, rgt, !ygt]);
            }
        }
    }

    /// Extends the sequential transfer counter to cover every allocated
    /// stage. Built on first demand (a transfer bound is requested), not in
    /// `push_stage`: a search that never bounds transfers — and notably the
    /// scratch path's first solve per `S`, the paper's exact instance —
    /// pays nothing for it.
    fn ensure_transfer_counter(&mut self) {
        while self.at_least.len() < self.stages {
            let t = self.at_least.len();
            let tr = !self.e[t];
            let prev: Vec<Bool> = self.at_least.last().cloned().unwrap_or_default();
            let mut cur: Vec<Bool> = Vec::with_capacity(t + 1);
            for j in 0..=t {
                let carried = prev.get(j).copied();
                let bumped = if j == 0 {
                    Some(tr)
                } else {
                    prev.get(j - 1).map(|&p| self.ctx.and(&[p, tr]))
                };
                let node = match (carried, bumped) {
                    (Some(c), Some(b)) => self.ctx.or(&[c, b]),
                    (Some(c), None) => c,
                    (None, Some(b)) => b,
                    (None, None) => unreachable!("j <= t"),
                };
                cur.push(node);
            }
            self.at_least.push(cur);
        }
    }

    /// `¬(at least k + 1 transfer stages among the first `prefix` stages)`
    /// as an assumable literal, or `None` when the bound is trivially
    /// satisfied (`k >= prefix`). Builds the counter on first use.
    fn transfer_bound(&mut self, prefix: usize, k: usize) -> Option<Bool> {
        if prefix == 0 || k >= prefix {
            return None;
        }
        self.ensure_transfer_counter();
        Some(!self.at_least[prefix - 1][k])
    }

    /// Branch-candidate pool for the lookahead cube splitter at a `prefix`
    /// of active stages: the order-encoding ladder rungs of every
    /// gate-stage variable (`g_i ≤ k` for `k < prefix − 1`; the `≤ prefix
    /// − 1` rung is implied by the active stage count), then the
    /// stage-kind flags `e_t` of the active prefix. These are the
    /// variables whose assignment shapes the whole schedule — branching
    /// on a rung halves a gate's stage domain, so probes see large
    /// propagation reductions.
    fn branch_candidates(&self, prefix: usize) -> Vec<Bool> {
        let mut cands = Vec::new();
        for &g in &self.g {
            let ladder = self.ctx.order_ladder(g);
            let take = prefix.saturating_sub(1).min(ladder.len());
            cands.extend_from_slice(&ladder[..take]);
        }
        cands.extend(self.e.iter().take(prefix).copied());
        cands
    }

    /// Decodes the first `prefix` stages of the model into a [`Schedule`].
    fn decode_prefix(&self, prefix: usize) -> Schedule {
        let n = self.problem.num_qubits;
        let read_int = |var: IntVar| -> i64 { self.ctx.int_value(var).expect("model available") };
        let read_bool = |b: Bool| -> bool { self.ctx.bool_value(b).expect("model available") };
        let stages = (0..prefix)
            .map(|t| {
                let qubits: Vec<QubitState> = (0..n)
                    .map(|q| {
                        let pos = Position {
                            x: read_int(self.x[q][t]),
                            y: read_int(self.y[q][t]),
                            h: read_int(self.h[q][t]),
                            v: read_int(self.v[q][t]),
                        };
                        let trap = if read_bool(self.a[q][t]) {
                            Trap::Aod {
                                col: read_int(self.c[q][t]),
                                row: read_int(self.r[q][t]),
                            }
                        } else {
                            Trap::Slm
                        };
                        QubitState { pos, trap }
                    })
                    .collect();
                let kind = if read_bool(self.e[t]) {
                    StageKind::Rydberg
                } else {
                    let mut flags = TransferFlags::default();
                    for (k, col) in self.cs.iter().enumerate() {
                        if read_bool(col[t]) {
                            flags.col_store.insert(k as i64);
                        }
                    }
                    for (k, col) in self.cl.iter().enumerate() {
                        if read_bool(col[t]) {
                            flags.col_load.insert(k as i64);
                        }
                    }
                    for (k, row) in self.rs.iter().enumerate() {
                        if read_bool(row[t]) {
                            flags.row_store.insert(k as i64);
                        }
                    }
                    for (k, row) in self.rl.iter().enumerate() {
                        if read_bool(row[t]) {
                            flags.row_load.insert(k as i64);
                        }
                    }
                    StageKind::Transfer(flags)
                };
                Stage { kind, qubits }
            })
            .collect();
        Schedule {
            config: self.problem.config.clone(),
            num_qubits: n,
            stages,
        }
    }
}

/// The scratch symbolic schedule: all variables for a fixed stage count
/// `S`, with every constraint asserted, ready to solve and decode.
///
/// This is the paper's per-`S` instance; the iterative-deepening driver
/// prefers [`IncrementalEncoding`], which reuses one solver across the
/// whole sweep, and keeps this path for A/B comparison (`--scratch`).
pub struct Encoding {
    core: Core,
}

impl Encoding {
    /// Builds the complete encoding for `s` stages.
    ///
    /// # Panics
    ///
    /// Panics if `s == 0` while gates exist, or the config is invalid.
    pub fn build(problem: &Problem, s: usize, opts: EncodeOptions) -> Self {
        let mut core = Core::new(problem, s, opts);
        for _ in 0..s {
            core.push_stage();
        }
        // Symmetry breaking: the last stage is an execution stage. (The
        // first-stage half lives in `push_stage`.)
        if opts.force_exec_boundary && s > 0 && !core.problem.gates.is_empty() {
            let el = core.e[s - 1];
            core.ctx.assert(el);
        }
        Encoding { core }
    }

    /// Seeds solver phase polarity from a known-valid schedule so the
    /// first descent starts adjacent to it; see
    /// [`nasp_sat::Solver::seed_phases`]. A decision-order hint only — the
    /// set of models is unchanged — and a no-op when the solver config's
    /// phase-seeding policy is off.
    pub fn seed_phase_hint(&mut self, hint: &Schedule) {
        self.core.seed_from_schedule(hint);
    }

    /// Solves the encoding under the given budget.
    pub fn solve(&mut self, budget: Budget) -> SolveResult {
        self.core.ctx.solve_limited(budget)
    }

    /// Partitions this encoding's search space into cubes with the
    /// lookahead splitter, branching over the gate-stage order ladders and
    /// stage-kind flags. Constraints already asserted (e.g.
    /// [`Encoding::assert_max_transfers`]) restrict every cube. See
    /// [`nasp_smt::Ctx::split_cubes`].
    pub fn split_cubes(&mut self, config: &LookaheadConfig, budget: &Budget) -> CubeSplit {
        let candidates = self.core.branch_candidates(self.core.stages);
        self.core.ctx.split_cubes(&[], &candidates, config, budget)
    }

    /// Solves one cube of a [`Encoding::split_cubes`] partition: the cube
    /// literals ride as assumptions on top of the asserted encoding.
    pub fn solve_cube(&mut self, cube: &[Bool], budget: Budget) -> SolveResult {
        self.core.ctx.solve_with(cube, budget)
    }

    /// Asserts that at most `k` stages are transfer stages (¬e_t), via the
    /// shared sequential transfer counter.
    ///
    /// This is an extension beyond the paper's objective (which minimizes
    /// only the total stage count S): among stage-minimal schedules, fewer
    /// transfer stages mean fewer error-prone 200 µs trap transfers, so the
    /// driver optionally tightens `k` after fixing S.
    pub fn assert_max_transfers(&mut self, k: usize) {
        if let Some(bound) = self.core.transfer_bound(self.core.stages, k) {
            self.core.ctx.assert(bound);
        }
    }

    /// Decodes the model into a concrete [`Schedule`].
    ///
    /// # Panics
    ///
    /// Panics if called before a successful [`Encoding::solve`].
    pub fn decode(&self) -> Schedule {
        self.core.decode_prefix(self.core.stages)
    }

    /// Diagnostics: SAT variable / clause counts of the compiled encoding.
    pub fn size(&self) -> (usize, usize) {
        (self.core.ctx.num_sat_vars(), self.core.ctx.num_clauses())
    }

    /// Search statistics of the underlying SAT solver (conflicts,
    /// propagations, decisions, restarts, …) accumulated over this
    /// encoding's `solve` calls.
    pub fn stats(&self) -> nasp_smt::Stats {
        self.core.ctx.stats()
    }

    /// Bytes occupied by the underlying solver's clause arena.
    pub fn clause_db_bytes(&self) -> usize {
        self.core.ctx.clause_db_bytes()
    }

    /// A copy of the solver's DRAT stream (`None` unless the encoding was
    /// built with [`SolverConfig::proof`]). A scratch encoding is one round,
    /// so the whole stream is the round's certificate material.
    pub fn proof_stream(&self) -> Option<Vec<u8>> {
        self.core.ctx.proof_stream()
    }

    /// Checks `proof` as a refutation of this (assumption-free) encoding
    /// with the in-tree backward DRAT checker. Call after
    /// [`Encoding::solve`] returned `Unsat`.
    ///
    /// # Panics
    ///
    /// Panics unless the encoding was built with [`SolverConfig::proof`].
    pub fn check_refutation(
        &self,
        proof: &[u8],
    ) -> Result<nasp_smt::drat::CheckOutcome, nasp_smt::drat::CheckError> {
        self.core.ctx.check_refutation_bytes(&[], proof)
    }
}

/// One encoding per problem, reused across the whole iterative-deepening
/// sweep (DESIGN.md §7).
///
/// Stages are allocated lazily up to `max_stages`; activating stage count
/// `S` means assuming the selector literal `act_S`, which switches on the
/// only constraints that depend on the stage count:
///
/// * `act_S → g_i ≤ S − 1` for every gate (one order literal each — "all
///   gates done within the first `S` stages"),
/// * `act_S → e_{S−1}` (the final-stage half of the execution-boundary
///   symmetry breaking).
///
/// Transfer caps are assumption literals over the always-built sequential
/// counter, so transfer tightening also adds no clauses. The solver keeps
/// its learnt clauses, VSIDS activities and saved phases warm across every
/// call, and assumption-level conflicts are retained as clauses mentioning
/// `¬act_S`, so proving UNSAT at `S` directly prunes the search at `S + 1`.
pub struct IncrementalEncoding {
    core: Core,
    /// `act[s - 1]` activates stage count `s` (grown with the stages).
    act: Vec<Bool>,
    /// Stage count of the most recent successful solve (decode prefix).
    active: usize,
    /// Stage count of the most recent query of any outcome: moving to a
    /// different count resets branching activities (learnt clauses and
    /// phases are kept) — scores tuned to refuting count `S` mislead the
    /// structurally different `S + 1` query, while repeat queries at one
    /// count (transfer tightening) profit from staying warm.
    last_query: usize,
}

impl IncrementalEncoding {
    /// Creates the encoding shell with a hard stage cap. No stages are
    /// allocated yet; they appear on demand in [`IncrementalEncoding::solve_at`].
    ///
    /// # Panics
    ///
    /// Panics if `max_stages == 0` while gates exist, or the config is
    /// invalid.
    pub fn build(problem: &Problem, max_stages: usize, opts: EncodeOptions) -> Self {
        IncrementalEncoding {
            core: Core::new(problem, max_stages, opts),
            act: Vec::new(),
            active: 0,
            last_query: 0,
        }
    }

    /// The hard stage cap fixed at construction.
    pub fn max_stages(&self) -> usize {
        self.core.stage_cap
    }

    /// Stages allocated so far (grows monotonically with the sweep).
    pub fn stages_built(&self) -> usize {
        self.core.stages
    }

    /// Seeds solver phase polarity from a known-valid schedule so the
    /// first descent starts adjacent to it; see
    /// [`nasp_sat::Solver::seed_phases`]. Already-allocated stages are
    /// seeded immediately; stages allocated later by the lazy sweep pick
    /// up their seed at creation. A decision-order hint only, and a no-op
    /// when the solver config's phase-seeding policy is off.
    pub fn seed_phase_hint(&mut self, hint: &Schedule) {
        self.core.seed_from_schedule(hint);
    }

    /// Allocates stages (and their activation selectors) up to count `s`.
    fn ensure_stages(&mut self, s: usize) {
        assert!(
            s <= self.core.stage_cap,
            "stage count {s} beyond the encoding cap {}",
            self.core.stage_cap
        );
        while self.core.stages < s {
            self.core.push_stage();
            let count = self.core.stages;
            let sel = self.core.ctx.new_selector();
            // act_count → every gate executes within the active prefix.
            for i in 0..self.core.g.len() {
                let done = self.core.ctx.le_const(self.core.g[i], count as i64 - 1);
                self.core.ctx.assert_guarded(sel, &[done]);
            }
            // act_count → the last active stage is an execution stage.
            if self.core.opts.force_exec_boundary && !self.core.problem.gates.is_empty() {
                let last_exec = self.core.e[count - 1];
                self.core.ctx.assert_guarded(sel, &[last_exec]);
            }
            self.act.push(sel);
        }
    }

    /// The activation set for stage count `s`: `act_s` positively, every
    /// other allocated selector negatively. Deactivating the others
    /// explicitly (instead of leaving them to phase-saved defaults)
    /// satisfies their guard clauses — and every selector-tagged learnt
    /// clause from earlier rounds — up front, keeping stale rounds out of
    /// propagation entirely.
    fn activation(&self, s: usize) -> Vec<Bool> {
        self.act
            .iter()
            .enumerate()
            .map(|(i, &sel)| if i == s - 1 { sel } else { !sel })
            .collect()
    }

    /// Solves for exactly `s` active stages under the given budget,
    /// reusing everything the solver learnt in earlier calls.
    ///
    /// # Panics
    ///
    /// Panics if `s == 0` or `s > max_stages`.
    pub fn solve_at(&mut self, s: usize, budget: Budget) -> SolveResult {
        assert!(s > 0, "need at least one active stage");
        self.refresh_activities(s);
        self.ensure_stages(s);
        let assumptions = self.activation(s);
        let result = self.core.ctx.solve_with(&assumptions, budget);
        if result == SolveResult::Sat {
            self.active = s;
        }
        result
    }

    /// Like [`IncrementalEncoding::solve_at`], additionally bounding the
    /// number of transfer stages within the active prefix to at most `k` —
    /// as a pure assumption, so the bound costs no clauses and can be
    /// retightened monotonically.
    pub fn solve_at_with_max_transfers(
        &mut self,
        s: usize,
        k: usize,
        budget: Budget,
    ) -> SolveResult {
        assert!(s > 0, "need at least one active stage");
        self.refresh_activities(s);
        self.ensure_stages(s);
        let mut assumptions = self.activation(s);
        assumptions.extend(self.core.transfer_bound(s, k));
        let result = self.core.ctx.solve_with(&assumptions, budget);
        if result == SolveResult::Sat {
            self.active = s;
        }
        result
    }

    /// Partitions the round "exactly `s` active stages (optionally with at
    /// most `max_transfers` transfer stages)" into cubes with the
    /// lookahead splitter. The round's activation set rides as the base
    /// assumption vector, so every cube extends it; the cube literals are
    /// order-ladder rungs / stage flags valid in any identically built
    /// encoding of the same problem and cap (variable numbering is
    /// deterministic), which is what lets conquer workers solve them on
    /// their own warm solvers. A `decided: Sat` split leaves this
    /// encoding's model decodable.
    pub fn split_cubes_at(
        &mut self,
        s: usize,
        max_transfers: Option<usize>,
        config: &LookaheadConfig,
        budget: &Budget,
    ) -> CubeSplit {
        assert!(s > 0, "need at least one active stage");
        self.refresh_activities(s);
        self.ensure_stages(s);
        let mut assumptions = self.activation(s);
        if let Some(k) = max_transfers {
            assumptions.extend(self.core.transfer_bound(s, k));
        }
        let candidates = self.core.branch_candidates(s);
        let split = self
            .core
            .ctx
            .split_cubes(&assumptions, &candidates, config, budget);
        if split.decided == Some(SolveResult::Sat) {
            self.active = s;
        }
        split
    }

    /// Walks the round's allocation sequence — stage constraints up to
    /// `s` and, for tightening rounds, the transfer counter's Tseitin
    /// nodes — without solving anything. A cube conquer worker calls this
    /// on receiving a round *before* claiming cubes, so that a worker
    /// that ends up claiming none still allocates exactly what its
    /// siblings (and the splitter) did: variable numbering is a pure
    /// function of the query sequence, and clause-sharing soundness
    /// (DESIGN.md §9) rests on every party walking the same one.
    pub fn prepare_at(&mut self, s: usize, max_transfers: Option<usize>) {
        assert!(s > 0, "need at least one active stage");
        self.refresh_activities(s);
        self.ensure_stages(s);
        if let Some(k) = max_transfers {
            let _ = self.core.transfer_bound(s, k);
        }
    }

    /// Solves one cube of an [`IncrementalEncoding::split_cubes_at`]
    /// partition at stage count `s`: activation set, optional transfer
    /// bound, then the cube literals, all as assumptions on the warm
    /// solver.
    pub fn solve_cube_at(
        &mut self,
        s: usize,
        max_transfers: Option<usize>,
        cube: &[Bool],
        budget: Budget,
    ) -> SolveResult {
        assert!(s > 0, "need at least one active stage");
        self.refresh_activities(s);
        self.ensure_stages(s);
        let mut assumptions = self.activation(s);
        if let Some(k) = max_transfers {
            assumptions.extend(self.core.transfer_bound(s, k));
        }
        assumptions.extend_from_slice(cube);
        let result = self.core.ctx.solve_with(&assumptions, budget);
        if result == SolveResult::Sat {
            self.active = s;
        }
        result
    }

    /// Resets branching activities when the stage count changes between
    /// queries (see the `last_query` field). Runs *before* `ensure_stages`
    /// so the reset belongs to entering the new round: variables allocated
    /// afterwards — and Tseitin nodes created mid-round, e.g. the transfer
    /// counter's — start at the round's running maximum activity.
    fn refresh_activities(&mut self, s: usize) {
        if self.last_query != 0 && self.last_query != s {
            self.core.ctx.reset_activities();
        }
        self.last_query = s;
    }

    /// Decodes the model of the most recent successful solve, reading only
    /// the active prefix (trailing allocated stages hold arbitrary frozen
    /// placements that never execute a gate).
    ///
    /// # Panics
    ///
    /// Panics if no solve has returned [`SolveResult::Sat`] yet.
    pub fn decode(&self) -> Schedule {
        assert!(self.active > 0, "decode before a successful solve");
        self.core.decode_prefix(self.active)
    }

    /// Diagnostics: SAT variable / clause counts of the encoding so far.
    pub fn size(&self) -> (usize, usize) {
        (self.core.ctx.num_sat_vars(), self.core.ctx.num_clauses())
    }

    /// Search statistics of the underlying SAT solver, accumulated over
    /// every `solve_at*` call on this encoding.
    pub fn stats(&self) -> nasp_smt::Stats {
        self.core.ctx.stats()
    }

    /// Bytes occupied by the underlying solver's clause arena.
    pub fn clause_db_bytes(&self) -> usize {
        self.core.ctx.clause_db_bytes()
    }

    /// A copy of the solver's DRAT stream (`None` unless the encoding was
    /// built with [`SolverConfig::proof`]). One warm solver serves the
    /// whole sweep, so the stream accumulates across rounds; each round's
    /// refutation is checked against the full stream plus that round's
    /// activation assumptions ([`IncrementalEncoding::check_refutation_at`]).
    pub fn proof_stream(&self) -> Option<Vec<u8>> {
        self.core.ctx.proof_stream()
    }

    /// Checks `proof` as a refutation of the round "exactly `s` active
    /// stages": the round's activation set joins the formula as unit
    /// clauses, mirroring how the solver reified the assumptions. Call
    /// after [`IncrementalEncoding::solve_at`] returned `Unsat` at `s`.
    ///
    /// # Panics
    ///
    /// Panics unless the encoding was built with [`SolverConfig::proof`],
    /// or if stage count `s` has not been allocated yet.
    pub fn check_refutation_at(
        &self,
        s: usize,
        proof: &[u8],
    ) -> Result<nasp_smt::drat::CheckOutcome, nasp_smt::drat::CheckError> {
        assert!(s >= 1 && s <= self.core.stages, "round {s} was never built");
        let assumptions = self.activation(s);
        self.core.ctx.check_refutation_bytes(&assumptions, proof)
    }
}

// Send audit: portfolio workers own one encoding each on scoped threads.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Encoding>();
    assert_send::<IncrementalEncoding>();
    assert_send::<Problem>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use nasp_arch::{validate_schedule, ArchConfig, Layout};

    fn tiny_problem(layout: Layout, gates: Vec<(usize, usize)>, n: usize) -> Problem {
        Problem::from_gates(ArchConfig::paper(layout), n, gates)
    }

    #[test]
    fn single_gate_one_stage() {
        let p = tiny_problem(Layout::BottomStorage, vec![(0, 1)], 3);
        let mut enc = Encoding::build(&p, 1, EncodeOptions::default());
        assert_eq!(enc.solve(Budget::unlimited()), SolveResult::Sat);
        let schedule = enc.decode();
        assert_eq!(schedule.num_rydberg(), 1);
        let violations = validate_schedule(&schedule, &p.gates);
        assert!(violations.is_empty(), "violations: {violations:?}");
    }

    #[test]
    fn shared_qubit_zoned_needs_transfer_stage() {
        // Gates (0,1) and (1,2) share qubit 1 ⇒ two beams. In a zoned
        // layout the idler of each beam must hide in storage, so qubits 0
        // and 2 swap vertical order between the beams — impossible with
        // rigid AOD rows alone. This is exactly the paper's Fig. 2
        // scenario: the minimum is beam / transfer / beam (S = 3).
        let p = tiny_problem(Layout::BottomStorage, vec![(0, 1), (1, 2)], 3);
        let mut enc = Encoding::build(&p, 1, EncodeOptions::default());
        assert_eq!(enc.solve(Budget::unlimited()), SolveResult::Unsat);
        let mut enc2 = Encoding::build(&p, 2, EncodeOptions::default());
        assert_eq!(enc2.solve(Budget::unlimited()), SolveResult::Unsat);
        let mut enc3 = Encoding::build(&p, 3, EncodeOptions::default());
        assert_eq!(enc3.solve(Budget::unlimited()), SolveResult::Sat);
        let schedule = enc3.decode();
        let violations = validate_schedule(&schedule, &p.gates);
        assert!(violations.is_empty(), "violations: {violations:?}");
        assert_eq!(schedule.num_rydberg(), 2);
        assert_eq!(schedule.num_transfer(), 1);
    }

    #[test]
    fn incremental_matches_scratch_on_fig2() {
        // The incremental sweep proves the same UNSAT prefix and finds the
        // same minimum as three scratch encodings, on one solver.
        let p = tiny_problem(Layout::BottomStorage, vec![(0, 1), (1, 2)], 3);
        let mut inc = IncrementalEncoding::build(&p, 8, EncodeOptions::default());
        assert_eq!(inc.solve_at(1, Budget::unlimited()), SolveResult::Unsat);
        assert_eq!(inc.solve_at(2, Budget::unlimited()), SolveResult::Unsat);
        assert_eq!(inc.solve_at(3, Budget::unlimited()), SolveResult::Sat);
        let schedule = inc.decode();
        assert_eq!(schedule.stages.len(), 3, "decode reads the active prefix");
        let violations = validate_schedule(&schedule, &p.gates);
        assert!(violations.is_empty(), "violations: {violations:?}");
        assert_eq!(schedule.num_rydberg(), 2);
        assert_eq!(schedule.num_transfer(), 1);
        assert_eq!(inc.stages_built(), 3, "stages are allocated lazily");
    }

    #[test]
    fn incremental_revisits_smaller_counts() {
        // After extending, earlier activation sets still answer correctly:
        // the guards are per-count, not monotone state changes.
        let p = tiny_problem(Layout::BottomStorage, vec![(0, 1), (1, 2)], 3);
        let mut inc = IncrementalEncoding::build(&p, 8, EncodeOptions::default());
        assert_eq!(inc.solve_at(3, Budget::unlimited()), SolveResult::Sat);
        assert_eq!(inc.solve_at(2, Budget::unlimited()), SolveResult::Unsat);
        assert_eq!(inc.solve_at(3, Budget::unlimited()), SolveResult::Sat);
        let schedule = inc.decode();
        assert!(validate_schedule(&schedule, &p.gates).is_empty());
    }

    #[test]
    fn incremental_transfer_bound_as_assumption() {
        // An unzoned 2-gate chain fits in S = 2 with zero transfers; the
        // assumption-guarded cap must find that without new clauses, and an
        // impossible cap at the zoned S = 3 instance must be UNSAT while
        // leaving the uncapped activation SAT.
        let p = tiny_problem(Layout::NoShielding, vec![(0, 1), (1, 2)], 3);
        let mut inc = IncrementalEncoding::build(&p, 8, EncodeOptions::default());
        assert_eq!(
            inc.solve_at_with_max_transfers(2, 0, Budget::unlimited()),
            SolveResult::Sat
        );
        assert_eq!(inc.decode().num_transfer(), 0);

        let pz = tiny_problem(Layout::BottomStorage, vec![(0, 1), (1, 2)], 3);
        let mut incz = IncrementalEncoding::build(&pz, 8, EncodeOptions::default());
        assert_eq!(incz.solve_at(3, Budget::unlimited()), SolveResult::Sat);
        assert_eq!(
            incz.solve_at_with_max_transfers(3, 0, Budget::unlimited()),
            SolveResult::Unsat
        );
        // The cap was an assumption, not an assertion: uncapped still SAT.
        assert_eq!(incz.solve_at(3, Budget::unlimited()), SolveResult::Sat);
        assert!(validate_schedule(&incz.decode(), &pz.gates).is_empty());
    }

    #[test]
    fn shared_qubit_no_shielding_two_stages() {
        // Without zones the same instance fits in two execution stages.
        let p = tiny_problem(Layout::NoShielding, vec![(0, 1), (1, 2)], 3);
        let mut enc = Encoding::build(&p, 2, EncodeOptions::default());
        assert_eq!(enc.solve(Budget::unlimited()), SolveResult::Sat);
        let schedule = enc.decode();
        let violations = validate_schedule(&schedule, &p.gates);
        assert!(violations.is_empty(), "violations: {violations:?}");
    }

    #[test]
    fn parallel_gates_share_one_stage() {
        let p = tiny_problem(Layout::BottomStorage, vec![(0, 1), (2, 3)], 4);
        let mut enc = Encoding::build(&p, 1, EncodeOptions::default());
        assert_eq!(enc.solve(Budget::unlimited()), SolveResult::Sat);
        let schedule = enc.decode();
        let violations = validate_schedule(&schedule, &p.gates);
        assert!(violations.is_empty(), "violations: {violations:?}");
        assert_eq!(schedule.executed_pairs(0).len(), 2);
    }

    #[test]
    fn no_shielding_layout_solves() {
        let p = tiny_problem(Layout::NoShielding, vec![(0, 1), (1, 2)], 4);
        let mut enc = Encoding::build(&p, 2, EncodeOptions::default());
        assert_eq!(enc.solve(Budget::unlimited()), SolveResult::Sat);
        let schedule = enc.decode();
        let violations = validate_schedule(&schedule, &p.gates);
        assert!(violations.is_empty(), "violations: {violations:?}");
    }

    #[test]
    fn encoding_size_reported() {
        let p = tiny_problem(Layout::BottomStorage, vec![(0, 1)], 2);
        let enc = Encoding::build(&p, 1, EncodeOptions::default());
        let (vars, clauses) = enc.size();
        assert!(vars > 0 && clauses > 0);
    }
}
