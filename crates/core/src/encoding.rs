//! The symbolic formulation of the scheduling problem — a faithful port of
//! the paper's Sec. IV: variables V1–V3, constraints C1–C6, plus the
//! constraints the paper omits "for brevity" (AOD row ordering, the load
//! analog of Eq. 20, the vertical analog of Eq. 21) and one soundness
//! addition (no spurious CZs; see DESIGN.md §4.2).
//!
//! The formulation is compiled onto the finite-domain SMT layer
//! (`nasp-smt`), replacing the paper's use of Z3 (DESIGN.md §3).

use nasp_arch::{Position, QubitState, Schedule, Stage, StageKind, TransferFlags, Trap};
use nasp_smt::{Bool, Budget, Ctx, IntVar, SolveResult};

use crate::problem::Problem;

/// Encoding options (strengthenings and symmetry breaking).
#[derive(Debug, Clone, Copy)]
pub struct EncodeOptions {
    /// Assert that the first and last stages are execution stages. Safe for
    /// minimality: initial placement is free, so a leading transfer stage
    /// can be folded into the initial configuration, and a trailing
    /// transfer stage does no work.
    pub force_exec_boundary: bool,
    /// Require every execution stage to execute at least one gate (a beam
    /// without gates only adds error). Toggled by ablation A1.
    pub nonempty_exec: bool,
}

impl Default for EncodeOptions {
    fn default() -> Self {
        EncodeOptions {
            force_exec_boundary: true,
            nonempty_exec: true,
        }
    }
}

/// The symbolic schedule: all variables for a fixed stage count `S`,
/// with every constraint asserted, ready to solve and decode.
pub struct Encoding {
    ctx: Ctx,
    problem: Problem,
    s: usize,
    // V1: per qubit, per stage.
    x: Vec<Vec<IntVar>>,
    y: Vec<Vec<IntVar>>,
    h: Vec<Vec<IntVar>>,
    v: Vec<Vec<IntVar>>,
    a: Vec<Vec<Bool>>,
    c: Vec<Vec<IntVar>>,
    r: Vec<Vec<IntVar>>,
    // V2: per gate / per stage.
    g: Vec<IntVar>,
    e: Vec<Bool>,
    // V3: per AOD line, per stage.
    cs: Vec<Vec<Bool>>,
    cl: Vec<Vec<Bool>>,
    rs: Vec<Vec<Bool>>,
    rl: Vec<Vec<Bool>>,
}

impl Encoding {
    /// Builds the complete encoding for `s` stages.
    ///
    /// # Panics
    ///
    /// Panics if `s == 0` while gates exist, or the config is invalid.
    pub fn build(problem: &Problem, s: usize, opts: EncodeOptions) -> Self {
        problem.config.validate().expect("valid architecture");
        assert!(
            s > 0 || problem.gates.is_empty(),
            "need at least one stage to execute gates"
        );
        let mut ctx = Ctx::new();
        let cfg = &problem.config;
        let n = problem.num_qubits;

        // --- V1: positioning variables.
        let mk_grid = |ctx: &mut Ctx, lo: i64, hi: i64, name: &str| -> Vec<Vec<IntVar>> {
            (0..n)
                .map(|q| {
                    (0..s)
                        .map(|t| ctx.int_var(lo, hi, &format!("{name}_{q}_{t}")))
                        .collect()
                })
                .collect()
        };
        let x = mk_grid(&mut ctx, 0, cfg.x_max, "x");
        let y = mk_grid(&mut ctx, 0, cfg.y_max, "y");
        let h = mk_grid(&mut ctx, -cfg.h_max, cfg.h_max, "h");
        let v = mk_grid(&mut ctx, -cfg.v_max, cfg.v_max, "v");
        let c = mk_grid(&mut ctx, 0, cfg.c_max, "c");
        let r = mk_grid(&mut ctx, 0, cfg.r_max, "r");
        let a: Vec<Vec<Bool>> = (0..n)
            .map(|_| (0..s).map(|_| ctx.bool_var()).collect())
            .collect();

        // --- V2: gate stages and stage kinds.
        let g: Vec<IntVar> = (0..problem.gates.len())
            .map(|i| ctx.int_var(0, s as i64 - 1, &format!("g_{i}")))
            .collect();
        let e: Vec<Bool> = (0..s).map(|_| ctx.bool_var()).collect();

        // --- V3: load/store flags per AOD line per stage.
        let mk_flags = |ctx: &mut Ctx, count: i64| -> Vec<Vec<Bool>> {
            (0..=count)
                .map(|_| (0..s).map(|_| ctx.bool_var()).collect())
                .collect()
        };
        let cs = mk_flags(&mut ctx, cfg.c_max);
        let cl = mk_flags(&mut ctx, cfg.c_max);
        let rs = mk_flags(&mut ctx, cfg.r_max);
        let rl = mk_flags(&mut ctx, cfg.r_max);

        let mut enc = Encoding {
            ctx,
            problem: problem.clone(),
            s,
            x,
            y,
            h,
            v,
            a,
            c,
            r,
            g,
            e,
            cs,
            cl,
            rs,
            rl,
        };
        enc.assert_all(opts);
        enc
    }

    /// `y` of qubit `q` lies in the entangling zone at stage `t`.
    fn in_zone(&mut self, q: usize, t: usize) -> Bool {
        let cfg = &self.problem.config;
        let (e_min, e_max) = (cfg.e_min, cfg.e_max);
        let yv = self.y[q][t];
        self.ctx.in_range(yv, e_min, e_max)
    }

    /// Proximity predicate of Eq. 12: same site and offsets within radius.
    fn near(&mut self, q1: usize, q2: usize, t: usize) -> Bool {
        let rad = self.problem.config.radius;
        let ex = self.ctx.eq(self.x[q1][t], self.x[q2][t]);
        let ey = self.ctx.eq(self.y[q1][t], self.y[q2][t]);
        let dh = self.ctx.abs_diff_lt(self.h[q1][t], self.h[q2][t], rad);
        let dv = self.ctx.abs_diff_lt(self.v[q1][t], self.v[q2][t], rad);
        self.ctx.and(&[ex, ey, dh, dv])
    }

    /// Lexicographic physical-x comparison `(x, h)_q1 < (x, h)_q2` at `t`.
    fn x_lex_lt(&mut self, q1: usize, q2: usize, t: usize) -> Bool {
        let lt_x = self.ctx.lt(self.x[q1][t], self.x[q2][t]);
        let eq_x = self.ctx.eq(self.x[q1][t], self.x[q2][t]);
        let lt_h = self.ctx.lt(self.h[q1][t], self.h[q2][t]);
        let tie = self.ctx.and(&[eq_x, lt_h]);
        self.ctx.or(&[lt_x, tie])
    }

    /// Lexicographic physical-y comparison `(y, v)_q1 < (y, v)_q2` at `t`.
    fn y_lex_lt(&mut self, q1: usize, q2: usize, t: usize) -> Bool {
        let lt_y = self.ctx.lt(self.y[q1][t], self.y[q2][t]);
        let eq_y = self.ctx.eq(self.y[q1][t], self.y[q2][t]);
        let lt_v = self.ctx.lt(self.v[q1][t], self.v[q2][t]);
        let tie = self.ctx.and(&[eq_y, lt_v]);
        self.ctx.or(&[lt_y, tie])
    }

    /// Disjunction `⋁_i (g_i = t)` over the given gate indices.
    fn some_gate_at(&mut self, gates: &[usize], t: usize) -> Vec<Bool> {
        gates
            .iter()
            .map(|&i| self.ctx.eq_const(self.g[i], t as i64))
            .collect()
    }

    /// Flag lookup `flags[line_var] ` as a Boolean:
    /// `⋁_k (line = k ∧ flags[k][t])`.
    fn line_flag(&mut self, line: IntVar, flags: &[Vec<Bool>], t: usize) -> Bool {
        let parts: Vec<Bool> = (0..flags.len())
            .map(|k| {
                let isk = self.ctx.eq_const(line, k as i64);
                self.ctx.and(&[isk, flags[k][t]])
            })
            .collect();
        self.ctx.or(&parts)
    }

    fn assert_all(&mut self, opts: EncodeOptions) {
        let n = self.problem.num_qubits;
        let s = self.s;
        let shielded = self.problem.config.has_storage();

        // Per-qubit gate index lists (for Eq. 14).
        let gates_of: Vec<Vec<usize>> = (0..n).map(|q| self.problem.gates_of(q)).collect();

        for t in 0..s {
            for q in 0..n {
                // C1, Eq. 10: SLM qubits sit at site centers.
                let aq = self.a[q][t];
                let h0 = self.ctx.eq_const(self.h[q][t], 0);
                let v0 = self.ctx.eq_const(self.v[q][t], 0);
                self.ctx.assert_or(&[aq, h0]);
                self.ctx.assert_or(&[aq, v0]);
            }

            for q1 in 0..n {
                for q2 in (q1 + 1)..n {
                    // C1, Eq. 9: equal offsets force distinct sites.
                    let eh = self.ctx.eq(self.h[q1][t], self.h[q2][t]);
                    let ev = self.ctx.eq(self.v[q1][t], self.v[q2][t]);
                    let ex = self.ctx.eq(self.x[q1][t], self.x[q2][t]);
                    let ey = self.ctx.eq(self.y[q1][t], self.y[q2][t]);
                    self.ctx.assert_or(&[!eh, !ev, !ex, !ey]);

                    // C2, Eq. 11 (+ row analog): AOD line order follows
                    // physical order.
                    let a1 = self.a[q1][t];
                    let a2 = self.a[q2][t];
                    let xlt = self.x_lex_lt(q1, q2, t);
                    let xgt = self.x_lex_lt(q2, q1, t);
                    let clt = self.ctx.lt(self.c[q1][t], self.c[q2][t]);
                    let cgt = self.ctx.lt(self.c[q2][t], self.c[q1][t]);
                    self.ctx.assert_or(&[!a1, !a2, !clt, xlt]);
                    self.ctx.assert_or(&[!a1, !a2, clt, !xlt]);
                    self.ctx.assert_or(&[!a1, !a2, !cgt, xgt]);
                    self.ctx.assert_or(&[!a1, !a2, cgt, !xgt]);
                    let ylt = self.y_lex_lt(q1, q2, t);
                    let ygt = self.y_lex_lt(q2, q1, t);
                    let rlt = self.ctx.lt(self.r[q1][t], self.r[q2][t]);
                    let rgt = self.ctx.lt(self.r[q2][t], self.r[q1][t]);
                    self.ctx.assert_or(&[!a1, !a2, !rlt, ylt]);
                    self.ctx.assert_or(&[!a1, !a2, rlt, !ylt]);
                    self.ctx.assert_or(&[!a1, !a2, !rgt, ygt]);
                    self.ctx.assert_or(&[!a1, !a2, rgt, !ygt]);

                    // Soundness: a near pair inside the entangling zone at
                    // an execution stage must BE a scheduled gate.
                    let near = self.near(q1, q2, t);
                    let z1 = self.in_zone(q1, t);
                    let z2 = self.in_zone(q2, t);
                    let pair_gates: Vec<usize> = self
                        .problem
                        .gates
                        .iter()
                        .enumerate()
                        .filter(|(_, &(ga, gb))| (ga, gb) == (q1, q2))
                        .map(|(i, _)| i)
                        .collect();
                    let mut clause = vec![!self.e[t], !near, !z1, !z2];
                    clause.extend(self.some_gate_at(&pair_gates, t));
                    self.ctx.assert_or(&clause);
                }
            }

            // C3, Eq. 14: shielding of idling qubits.
            for (q, q_gates) in gates_of.iter().enumerate() {
                let gate_disj = self.some_gate_at(q_gates, t);
                if shielded {
                    let z = self.in_zone(q, t);
                    let mut clause = vec![!self.e[t], !z];
                    clause.extend(gate_disj);
                    self.ctx.assert_or(&clause);
                } else {
                    // Footnote 2: idling qubits sit in interaction sites not
                    // shared with any other qubit.
                    for q2 in 0..n {
                        if q2 == q {
                            continue;
                        }
                        let ex = self.ctx.eq(self.x[q][t], self.x[q2][t]);
                        let ey = self.ctx.eq(self.y[q][t], self.y[q2][t]);
                        let mut clause = vec![!self.e[t], !ex, !ey];
                        clause.extend(gate_disj.iter().copied());
                        self.ctx.assert_or(&clause);
                    }
                }
            }

            // Optional strengthening: execution stages execute something.
            if opts.nonempty_exec {
                let all: Vec<usize> = (0..self.problem.gates.len()).collect();
                let mut clause = vec![!self.e[t]];
                clause.extend(self.some_gate_at(&all, t));
                self.ctx.assert_or(&clause);
            }
        }

        // C3, Eq. 12: gate execution prerequisites.
        for i in 0..self.problem.gates.len() {
            let (q1, q2) = self.problem.gates[i];
            for t in 0..s {
                let git = self.ctx.eq_const(self.g[i], t as i64);
                let et = self.e[t];
                self.ctx.assert_implies(git, et);
                let ex = self.ctx.eq(self.x[q1][t], self.x[q2][t]);
                self.ctx.assert_implies(git, ex);
                let ey = self.ctx.eq(self.y[q1][t], self.y[q2][t]);
                self.ctx.assert_implies(git, ey);
                let rad = self.problem.config.radius;
                let dh = self.ctx.abs_diff_lt(self.h[q1][t], self.h[q2][t], rad);
                self.ctx.assert_implies(git, dh);
                let dv = self.ctx.abs_diff_lt(self.v[q1][t], self.v[q2][t], rad);
                self.ctx.assert_implies(git, dv);
                let z1 = self.in_zone(q1, t);
                self.ctx.assert_implies(git, z1);
                let z2 = self.in_zone(q2, t);
                self.ctx.assert_implies(git, z2);
            }
        }

        // C3, Eq. 13: gates sharing a qubit never share a stage.
        for i in 0..self.problem.gates.len() {
            for j in (i + 1)..self.problem.gates.len() {
                let (a1, b1) = self.problem.gates[i];
                let (a2, b2) = self.problem.gates[j];
                if a1 == a2 || a1 == b2 || b1 == a2 || b1 == b2 {
                    let ne = self.ctx.ne(self.g[i], self.g[j]);
                    self.ctx.assert(ne);
                }
            }
        }

        // Transitions between consecutive stages.
        for t in 0..s.saturating_sub(1) {
            let et = self.e[t];
            for q in 0..n {
                let a0 = self.a[q][t];
                let a1 = self.a[q][t + 1];
                // C4, Eq. 15: execution stages preserve trap type.
                self.ctx.assert_or(&[!et, !a0, a1]);
                self.ctx.assert_or(&[!et, a0, !a1]);
                // C4, Eq. 16: SLM qubits are static.
                let ex = self.ctx.eq(self.x[q][t], self.x[q][t + 1]);
                let ey = self.ctx.eq(self.y[q][t], self.y[q][t + 1]);
                self.ctx.assert_or(&[!et, a0, ex]);
                self.ctx.assert_or(&[!et, a0, ey]);
                // C4, Eq. 17: AOD qubits keep their lines while shuttling.
                let ec = self.ctx.eq(self.c[q][t], self.c[q][t + 1]);
                let er = self.ctx.eq(self.r[q][t], self.r[q][t + 1]);
                self.ctx.assert_or(&[!et, !a0, ec]);
                self.ctx.assert_or(&[!et, !a0, er]);

                // C5, Eq. 18: storing only at site centers.
                let h0 = self.ctx.eq_const(self.h[q][t], 0);
                let v0 = self.ctx.eq_const(self.v[q][t], 0);
                self.ctx.assert_or(&[et, a1, h0]);
                self.ctx.assert_or(&[et, a1, v0]);
                // C5, Eq. 19: qubits ending in SLM do not move.
                self.ctx.assert_or(&[et, a1, ex]);
                self.ctx.assert_or(&[et, a1, ey]);
                // C5, Eq. 20: store iff a store flag covers the qubit's line.
                let fs_c = self.line_flag(self.c[q][t], &self.cs.clone(), t);
                let fs_r = self.line_flag(self.r[q][t], &self.rs.clone(), t);
                let fs = self.ctx.or(&[fs_c, fs_r]);
                self.ctx.assert_or(&[et, !a0, a1, fs]);
                self.ctx.assert_or(&[et, !a0, !fs, !a1]);
                // C5 (load analog): load iff a load flag covers the new line.
                let fl_c = self.line_flag(self.c[q][t + 1], &self.cl.clone(), t);
                let fl_r = self.line_flag(self.r[q][t + 1], &self.rl.clone(), t);
                let fl = self.ctx.or(&[fl_c, fl_r]);
                self.ctx.assert_or(&[et, a0, !a1, fl]);
                self.ctx.assert_or(&[et, a0, !fl, a1]);
            }
            // C6, Eq. 21 (+ vertical analog): loading preserves relative
            // physical order.
            for q1 in 0..n {
                for q2 in (q1 + 1)..n {
                    let a1n = self.a[q1][t + 1];
                    let a2n = self.a[q2][t + 1];
                    let xlt = self.x_lex_lt(q1, q2, t);
                    let xgt = self.x_lex_lt(q2, q1, t);
                    let clt = self.ctx.lt(self.c[q1][t + 1], self.c[q2][t + 1]);
                    let cgt = self.ctx.lt(self.c[q2][t + 1], self.c[q1][t + 1]);
                    self.ctx.assert_or(&[et, !a1n, !a2n, !clt, xlt]);
                    self.ctx.assert_or(&[et, !a1n, !a2n, clt, !xlt]);
                    self.ctx.assert_or(&[et, !a1n, !a2n, !cgt, xgt]);
                    self.ctx.assert_or(&[et, !a1n, !a2n, cgt, !xgt]);
                    let ylt = self.y_lex_lt(q1, q2, t);
                    let ygt = self.y_lex_lt(q2, q1, t);
                    let rlt = self.ctx.lt(self.r[q1][t + 1], self.r[q2][t + 1]);
                    let rgt = self.ctx.lt(self.r[q2][t + 1], self.r[q1][t + 1]);
                    self.ctx.assert_or(&[et, !a1n, !a2n, !rlt, ylt]);
                    self.ctx.assert_or(&[et, !a1n, !a2n, rlt, !ylt]);
                    self.ctx.assert_or(&[et, !a1n, !a2n, !rgt, ygt]);
                    self.ctx.assert_or(&[et, !a1n, !a2n, rgt, !ygt]);
                }
            }
        }

        // Symmetry breaking: first and last stages are execution stages.
        if opts.force_exec_boundary && s > 0 && !self.problem.gates.is_empty() {
            let e0 = self.e[0];
            self.ctx.assert(e0);
            let el = self.e[s - 1];
            self.ctx.assert(el);
        }
    }

    /// Solves the encoding under the given budget.
    pub fn solve(&mut self, budget: Budget) -> SolveResult {
        self.ctx.solve_limited(budget)
    }

    /// Asserts that at most `k` stages are transfer stages (¬e_t), via a
    /// sequential-counter cardinality encoding.
    ///
    /// This is an extension beyond the paper's objective (which minimizes
    /// only the total stage count S): among stage-minimal schedules, fewer
    /// transfer stages mean fewer error-prone 200 µs trap transfers, so the
    /// driver optionally tightens `k` after fixing S.
    pub fn assert_max_transfers(&mut self, k: usize) {
        let transfers: Vec<Bool> = self.e.iter().map(|&e| !e).collect();
        if transfers.len() <= k {
            return;
        }
        if k == 0 {
            for t in transfers {
                self.ctx.assert(!t);
            }
            return;
        }
        // Sequential counter: partial[i][j] ⇔ at least j+1 of the first
        // i+1 stage indicators are transfers.
        let n = transfers.len();
        let mut prev: Vec<Bool> = Vec::new();
        for (i, &x) in transfers.iter().enumerate() {
            let width = (i + 1).min(k + 1);
            let mut cur: Vec<Bool> = Vec::with_capacity(width);
            for j in 0..width {
                let carried = prev.get(j).copied();
                let bumped = if j == 0 {
                    Some(x)
                } else {
                    prev.get(j - 1).map(|&p| self.ctx.and(&[p, x]))
                };
                let node = match (carried, bumped) {
                    (Some(c), Some(b)) => self.ctx.or(&[c, b]),
                    (Some(c), None) => c,
                    (None, Some(b)) => b,
                    (None, None) => unreachable!("j < width"),
                };
                cur.push(node);
            }
            // Overflow: k+1 transfers among the first i+1 stages.
            if cur.len() == k + 1 {
                let overflow = cur[k];
                self.ctx.assert(!overflow);
                cur.truncate(k + 1);
            }
            prev = cur;
            let _ = n;
        }
    }

    /// Decodes the model into a concrete [`Schedule`].
    ///
    /// # Panics
    ///
    /// Panics if called before a successful [`Encoding::solve`].
    pub fn decode(&self) -> Schedule {
        let n = self.problem.num_qubits;
        let read_int = |var: IntVar| -> i64 { self.ctx.int_value(var).expect("model available") };
        let read_bool = |b: Bool| -> bool { self.ctx.bool_value(b).expect("model available") };
        let stages = (0..self.s)
            .map(|t| {
                let qubits: Vec<QubitState> = (0..n)
                    .map(|q| {
                        let pos = Position {
                            x: read_int(self.x[q][t]),
                            y: read_int(self.y[q][t]),
                            h: read_int(self.h[q][t]),
                            v: read_int(self.v[q][t]),
                        };
                        let trap = if read_bool(self.a[q][t]) {
                            Trap::Aod {
                                col: read_int(self.c[q][t]),
                                row: read_int(self.r[q][t]),
                            }
                        } else {
                            Trap::Slm
                        };
                        QubitState { pos, trap }
                    })
                    .collect();
                let kind = if read_bool(self.e[t]) {
                    StageKind::Rydberg
                } else {
                    let mut flags = TransferFlags::default();
                    for (k, col) in self.cs.iter().enumerate() {
                        if read_bool(col[t]) {
                            flags.col_store.insert(k as i64);
                        }
                    }
                    for (k, col) in self.cl.iter().enumerate() {
                        if read_bool(col[t]) {
                            flags.col_load.insert(k as i64);
                        }
                    }
                    for (k, row) in self.rs.iter().enumerate() {
                        if read_bool(row[t]) {
                            flags.row_store.insert(k as i64);
                        }
                    }
                    for (k, row) in self.rl.iter().enumerate() {
                        if read_bool(row[t]) {
                            flags.row_load.insert(k as i64);
                        }
                    }
                    StageKind::Transfer(flags)
                };
                Stage { kind, qubits }
            })
            .collect();
        Schedule {
            config: self.problem.config.clone(),
            num_qubits: n,
            stages,
        }
    }

    /// Diagnostics: SAT variable / clause counts of the compiled encoding.
    pub fn size(&self) -> (usize, usize) {
        (self.ctx.num_sat_vars(), self.ctx.num_clauses())
    }

    /// Search statistics of the underlying SAT solver (conflicts,
    /// propagations, …) accumulated over this encoding's `solve` calls.
    pub fn stats(&self) -> nasp_smt::Stats {
        self.ctx.stats()
    }

    /// Bytes occupied by the underlying solver's clause arena.
    pub fn clause_db_bytes(&self) -> usize {
        self.ctx.clause_db_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nasp_arch::{validate_schedule, ArchConfig, Layout};

    fn tiny_problem(layout: Layout, gates: Vec<(usize, usize)>, n: usize) -> Problem {
        Problem::from_gates(ArchConfig::paper(layout), n, gates)
    }

    #[test]
    fn single_gate_one_stage() {
        let p = tiny_problem(Layout::BottomStorage, vec![(0, 1)], 3);
        let mut enc = Encoding::build(&p, 1, EncodeOptions::default());
        assert_eq!(enc.solve(Budget::unlimited()), SolveResult::Sat);
        let schedule = enc.decode();
        assert_eq!(schedule.num_rydberg(), 1);
        let violations = validate_schedule(&schedule, &p.gates);
        assert!(violations.is_empty(), "violations: {violations:?}");
    }

    #[test]
    fn shared_qubit_zoned_needs_transfer_stage() {
        // Gates (0,1) and (1,2) share qubit 1 ⇒ two beams. In a zoned
        // layout the idler of each beam must hide in storage, so qubits 0
        // and 2 swap vertical order between the beams — impossible with
        // rigid AOD rows alone. This is exactly the paper's Fig. 2
        // scenario: the minimum is beam / transfer / beam (S = 3).
        let p = tiny_problem(Layout::BottomStorage, vec![(0, 1), (1, 2)], 3);
        let mut enc = Encoding::build(&p, 1, EncodeOptions::default());
        assert_eq!(enc.solve(Budget::unlimited()), SolveResult::Unsat);
        let mut enc2 = Encoding::build(&p, 2, EncodeOptions::default());
        assert_eq!(enc2.solve(Budget::unlimited()), SolveResult::Unsat);
        let mut enc3 = Encoding::build(&p, 3, EncodeOptions::default());
        assert_eq!(enc3.solve(Budget::unlimited()), SolveResult::Sat);
        let schedule = enc3.decode();
        let violations = validate_schedule(&schedule, &p.gates);
        assert!(violations.is_empty(), "violations: {violations:?}");
        assert_eq!(schedule.num_rydberg(), 2);
        assert_eq!(schedule.num_transfer(), 1);
    }

    #[test]
    fn shared_qubit_no_shielding_two_stages() {
        // Without zones the same instance fits in two execution stages.
        let p = tiny_problem(Layout::NoShielding, vec![(0, 1), (1, 2)], 3);
        let mut enc = Encoding::build(&p, 2, EncodeOptions::default());
        assert_eq!(enc.solve(Budget::unlimited()), SolveResult::Sat);
        let schedule = enc.decode();
        let violations = validate_schedule(&schedule, &p.gates);
        assert!(violations.is_empty(), "violations: {violations:?}");
    }

    #[test]
    fn parallel_gates_share_one_stage() {
        let p = tiny_problem(Layout::BottomStorage, vec![(0, 1), (2, 3)], 4);
        let mut enc = Encoding::build(&p, 1, EncodeOptions::default());
        assert_eq!(enc.solve(Budget::unlimited()), SolveResult::Sat);
        let schedule = enc.decode();
        let violations = validate_schedule(&schedule, &p.gates);
        assert!(violations.is_empty(), "violations: {violations:?}");
        assert_eq!(schedule.executed_pairs(0).len(), 2);
    }

    #[test]
    fn no_shielding_layout_solves() {
        let p = tiny_problem(Layout::NoShielding, vec![(0, 1), (1, 2)], 4);
        let mut enc = Encoding::build(&p, 2, EncodeOptions::default());
        assert_eq!(enc.solve(Budget::unlimited()), SolveResult::Sat);
        let schedule = enc.decode();
        let violations = validate_schedule(&schedule, &p.gates);
        assert!(violations.is_empty(), "violations: {violations:?}");
    }

    #[test]
    fn encoding_size_reported() {
        let p = tiny_problem(Layout::BottomStorage, vec![(0, 1)], 2);
        let enc = Encoding::build(&p, 1, EncodeOptions::default());
        let (vars, clauses) = enc.size();
        assert!(vars > 0 && clauses > 0);
    }
}
