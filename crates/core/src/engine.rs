//! The reusable scheduling engine: warm solver state that outlives a
//! single `solve` call.
//!
//! [`solve()`](crate::solve::solve) is a run-to-completion free function:
//! every call rebuilds its [`IncrementalEncoding`] from scratch, pays the
//! cold-start cost, and drops the warm learnt clauses on return. That is
//! the right shape for a batch experiment, and exactly the wrong shape for
//! a service answering a stream of schedule queries about the *same*
//! `(code, layout)` family.
//!
//! [`Engine`] / [`Session`] split the free function into a handle:
//!
//! * an [`Engine`] creates sessions (and is the natural place for future
//!   engine-wide state: clause exchanges, shared budgets, telemetry);
//! * a [`Session`] owns one [`Problem`] plus everything `solve()` used to
//!   rebuild per call — the warm [`IncrementalEncoding`] (learnt clauses,
//!   variable activities, saved phases) and the [`SolveReport`] history.
//!   Repeat [`Session::run`] calls on the incremental single-solver path
//!   start from the retained solver state, so a query the session has
//!   effectively answered before costs a handful of propagations instead
//!   of a full search: proven-UNSAT rounds are re-refuted by their
//!   retained assumption-conflict clauses and SAT rounds replay their
//!   saved phases (DESIGN.md §7, §10).
//!
//! `solve(problem, options)` is kept as a thin compatibility shim over
//! `Engine::new().session(problem.clone()).run(options)` — a fresh
//! session per call reports bit-identical results to the old code path.
//!
//! Per-run accounting: the underlying solver counters are cumulative over
//! an encoding's lifetime, so a warm session snapshots them after every
//! run and reports only the delta — each [`SolveReport`] describes the
//! effort of *its* run, not the session's lifetime total (the invariant
//! the warm-reuse acceptance test pins: a warm rerun reports *fewer*
//! conflicts than the cold run, not more).
//!
//! # Example
//!
//! ```
//! use nasp_core::{Engine, Problem, SolveOptions};
//! use nasp_arch::{ArchConfig, Layout};
//!
//! let problem = Problem::from_gates(
//!     ArchConfig::paper(Layout::BottomStorage),
//!     3,
//!     vec![(0, 1), (1, 2)],
//! );
//! let engine = Engine::new();
//! let mut session = engine.session(problem);
//! let cold = session.run(&SolveOptions::default());
//! let warm = session.run(&SolveOptions::default());
//! // Identical verdicts, and the warm rerun rides the retained clauses.
//! assert_eq!(cold.provenance, warm.provenance);
//! assert_eq!(cold.proven_lb, warm.proven_lb);
//! assert!(warm.sat_conflicts <= cold.sat_conflicts);
//! assert_eq!(session.runs(), 2);
//! ```

use std::time::Instant;

use nasp_arch::Schedule;
use nasp_smt::{SolveResult, Stats, Terminator};

use crate::encoding::{EncodeOptions, Encoding, IncrementalEncoding};
use crate::heuristic;
use crate::problem::Problem;
use crate::solve::{
    round_encode, solve_scratch, tighten_transfers_incremental, Provenance, SearchMode,
    SearchState, SolveOptions, SolveReport, StagePlanner, INCREMENTAL_HEADROOM,
};

/// Factory for warm scheduling sessions.
///
/// Stateless today; the type exists so callers hold a handle rather than a
/// free function, and so engine-wide resources (shared clause exchanges,
/// admission budgets, telemetry sinks) have a home when they arrive.
#[derive(Debug, Clone, Copy, Default)]
pub struct Engine;

impl Engine {
    /// Creates an engine.
    pub fn new() -> Self {
        Engine
    }

    /// Opens a warm session for `problem`. The session owns the problem
    /// and retains solver state across [`Session::run`] calls.
    pub fn session(&self, problem: Problem) -> Session {
        Session {
            problem,
            warm: None,
            history: Vec::new(),
        }
    }

    /// One-shot convenience: `session(problem).run(options)` without
    /// keeping the session. Exactly the semantics of
    /// [`solve()`](crate::solve::solve), which is implemented on top of
    /// this.
    pub fn solve(&self, problem: &Problem, options: &SolveOptions) -> SolveReport {
        self.session(problem.clone()).run(options)
    }
}

/// The warm state a session retains between runs for the incremental
/// single-solver path.
struct WarmEncoding {
    enc: IncrementalEncoding,
    /// Encode options the encoding was built with; a run with different
    /// options rebuilds (learnt clauses under other strengthenings are
    /// not transferable in general).
    encode: EncodeOptions,
    /// Cumulative solver stats already attributed to earlier runs; the
    /// next run reports `enc.stats() - reported`.
    reported: Stats,
}

/// A long-lived scheduling session: one [`Problem`], its warm incremental
/// encoding, and the history of reports it has produced.
///
/// Created by [`Engine::session`]. See the [module docs](self) for the
/// reuse semantics; [`Session::run`] documents which option combinations
/// keep the solver warm.
pub struct Session {
    problem: Problem,
    warm: Option<WarmEncoding>,
    history: Vec<SolveReport>,
}

impl Session {
    /// The problem this session schedules.
    pub fn problem(&self) -> &Problem {
        &self.problem
    }

    /// Reports of every run so far, oldest first.
    pub fn history(&self) -> &[SolveReport] {
        &self.history
    }

    /// Number of completed runs.
    pub fn runs(&self) -> usize {
        self.history.len()
    }

    /// `true` once a warm incremental encoding is retained — the next
    /// compatible [`run`](Session::run) starts from its learnt clauses.
    pub fn is_warm(&self) -> bool {
        self.warm.is_some()
    }

    /// Runs one search with `options`, exactly the semantics of
    /// [`solve()`](crate::solve::solve), and appends the report to
    /// [`history`](Session::history).
    ///
    /// Warm reuse applies to the default path (`incremental = true`,
    /// `portfolio = 1`): the session keeps one [`IncrementalEncoding`]
    /// across runs and rebuilds only when the encode options change or
    /// the sweep outgrows the retained stage cap. The scratch, portfolio
    /// and cube-and-conquer paths build their own encodings per call
    /// (the portfolio and cube pools keep workers warm *within* a call,
    /// DESIGN.md §8/§13) and leave the session's warm state untouched.
    pub fn run(&mut self, options: &SolveOptions) -> SolveReport {
        self.run_with_cancel(options, None)
    }

    /// Like [`run`](Session::run), with an external cooperative-cancellation
    /// flag. When `cancel` is signalled — by a client abandoning its
    /// request, a draining server, or any other owner of the flag — the
    /// solver backs out at its next poll (every conflict, every 128
    /// decisions), the sweep stops scheduling new rounds, and the report
    /// falls back exactly as if the time budget had expired: the proven
    /// lower bound reflects every round refuted so far, and the heuristic
    /// fallback (if enabled) still supplies a valid non-optimal schedule.
    /// The session, including its warm encoding, stays reusable.
    ///
    /// # Panics
    ///
    /// Panics when `options` is internally inconsistent per
    /// [`SolveOptions::validate`] — today, certification combined with the
    /// portfolio or cube-and-conquer back-ends. Servers should call
    /// `validate()` themselves and turn the error into a client response.
    pub fn run_with_cancel(
        &mut self,
        options: &SolveOptions,
        cancel: Option<&Terminator>,
    ) -> SolveReport {
        if let Err(e) = options.validate() {
            panic!("invalid SolveOptions: {e}");
        }
        let start = Instant::now();
        let deadline = start + options.time_budget;

        let report = if self.problem.gates.is_empty() {
            // Vacuously certified under `certify`: no rounds, no proofs.
            let state = SearchState::new(start, deadline, 0).with_certify(options);
            state.report(
                Some(Schedule {
                    config: self.problem.config.clone(),
                    num_qubits: self.problem.num_qubits,
                    stages: Vec::new(),
                }),
                Provenance::Optimal,
            )
        } else {
            // The bracketed modes pay for one heuristic run up front: its
            // stage count `S_h` bounds the sweep from above and its
            // schedule seeds the solver's phase polarities. Deepening (the
            // A/B baseline) keeps the historical blind sweep and computes
            // the heuristic only on fallback.
            let hint = if options.search_mode != SearchMode::Deepening {
                heuristic::schedule(&self.problem)
            } else {
                None
            };
            if options.cube.is_some() {
                // Cube-and-conquer takes precedence over the portfolio:
                // both are round-parallel back-ends, and an explicit cube
                // request is the more specific ask (DESIGN.md §13).
                crate::cube::solve_cube(
                    &self.problem,
                    options,
                    start,
                    deadline,
                    cancel,
                    hint.as_ref(),
                )
            } else if options.portfolio > 1 {
                crate::portfolio::solve_portfolio(
                    &self.problem,
                    options,
                    start,
                    deadline,
                    cancel,
                    hint.as_ref(),
                )
            } else if options.incremental {
                self.run_incremental(options, start, deadline, cancel, hint.as_ref())
            } else {
                solve_scratch(
                    &self.problem,
                    options,
                    start,
                    deadline,
                    cancel,
                    hint.as_ref(),
                )
            }
        };
        self.history.push(report.clone());
        report
    }

    /// The incremental sweep over the session's retained encoding: one
    /// warm solver, assumption-guarded activation of each stage count and
    /// transfer cap, per-run stat deltas. The probe order comes from the
    /// [`StagePlanner`]; the epilogue stays inline (rather than routing
    /// through [`crate::solve::finish_search`]) because the per-run
    /// stat-delta bookkeeping must bracket both the tightening loop and
    /// the fallback path against the warm encoding's cumulative counters.
    fn run_incremental(
        &mut self,
        options: &SolveOptions,
        start: Instant,
        deadline: Instant,
        cancel: Option<&Terminator>,
        hint: Option<&Schedule>,
    ) -> SolveReport {
        let problem = &self.problem;
        let warm_slot = &mut self.warm;

        let lb = problem.stage_lower_bound().max(1);
        let ub = hint.map(|h| h.stages.len());
        let mut state = SearchState::new(start, deadline, lb)
            .with_cancel(cancel.cloned())
            .with_heuristic_ub(ub)
            .with_certify(options);
        if lb > options.max_stages {
            return state.fallback(problem, options.heuristic_fallback, hint.cloned());
        }
        let bracketed = options.search_mode != SearchMode::Deepening;

        // Certification rides the encode options (it is a solver setting),
        // so a certified and an uncertified run never share warm state —
        // the equality check below sees them as different encodings.
        let encode = round_encode(options);

        // Reuse the retained encoding when its strengthenings match;
        // otherwise (first run, or changed encode options) build cold.
        // The stage cap starts with modest headroom above the lower bound
        // and rebuilds — a rare cold start — only if the sweep outgrows
        // it (see `INCREMENTAL_HEADROOM`).
        let reusable = matches!(warm_slot, Some(w) if w.encode == encode);
        if !reusable {
            let cap = (lb + INCREMENTAL_HEADROOM).min(options.max_stages);
            *warm_slot = Some(WarmEncoding {
                enc: IncrementalEncoding::build(problem, cap, encode),
                encode,
                reported: Stats::default(),
            });
        }
        let warm = warm_slot.as_mut().expect("warm encoding just ensured");
        // Re-seed every run: a warm solver's saved phases may have drifted
        // arbitrarily far from the hint since the previous run.
        if let Some(h) = hint {
            warm.enc.seed_phase_hint(h);
        }

        let mut planner = StagePlanner::new(options.search_mode, lb, ub, options.max_stages);
        let mut incumbent: Option<Schedule> = None;
        while let Some(s) = planner.next() {
            if state.expired() {
                break;
            }
            if s > warm.enc.max_stages() {
                state.counters.absorb(
                    stats_delta(warm.enc.stats(), warm.reported),
                    warm.enc.clause_db_bytes(),
                );
                let cap = (s + INCREMENTAL_HEADROOM).min(options.max_stages);
                warm.enc = IncrementalEncoding::build(problem, cap, encode);
                warm.reported = Stats::default();
                if let Some(h) = hint {
                    warm.enc.seed_phase_hint(h);
                }
            }
            let mut result = warm.enc.solve_at(s, state.budget());
            if options.certify && result == SolveResult::Unsat {
                // The warm solver's proof stream is cumulative across
                // rounds; each refutation is checked against the full
                // stream with this round's activation selector supplied as
                // assumption units.
                let mut proof = warm
                    .enc
                    .proof_stream()
                    .expect("certify builds proof-mode solvers");
                state.chaos_corrupt(&mut proof);
                let t0 = Instant::now();
                match warm.enc.check_refutation_at(s, &proof) {
                    Ok(out) => state.record_certified(out.proof_bytes as u64, t0.elapsed()),
                    Err(_) => {
                        // Bad certificate: before the planner acts on the
                        // refutation, re-prove this round on a cold
                        // proof-free encoding and trust only the replay.
                        // The warm solver stays usable for later rounds —
                        // its verdicts are sound even when its log is not
                        // checkable.
                        state.record_uncertified();
                        let mut replay = Encoding::build(problem, s, options.encode);
                        if let Some(h) = hint {
                            replay.seed_phase_hint(h);
                        }
                        result = replay.solve(state.budget());
                        state
                            .counters
                            .absorb(replay.stats(), replay.clause_db_bytes());
                    }
                }
            }
            if bracketed {
                state.record_probe(s, result);
            } else {
                state.record(s, result);
            }
            planner.on_result(s, result);
            if result == SolveResult::Sat {
                incumbent = Some(warm.enc.decode());
                if !bracketed {
                    break;
                }
            }
        }

        // A bracketed sweep that refuted every count below `S_h` has
        // proven the heuristic schedule stage-optimal — adopt it without
        // asking the solver for a model (when `S_h == lb` the planner
        // yields no probes at all and the solver is never invoked).
        let sat_found = incumbent.is_some();
        let adopted = match (&incumbent, hint) {
            (None, Some(h)) if bracketed => {
                let s_h = h.stages.len();
                (s_h <= options.max_stages && state.proven_lb() >= s_h).then(|| (*h).clone())
            }
            _ => None,
        };
        match incumbent.or(adopted) {
            Some(mut schedule) => {
                let s = schedule.stages.len();
                if options.minimize_transfers {
                    if s > warm.enc.max_stages() {
                        // An adopted heuristic schedule can sit past the
                        // cap the sweep needed; rebuild to tighten at `s`.
                        state.counters.absorb(
                            stats_delta(warm.enc.stats(), warm.reported),
                            warm.enc.clause_db_bytes(),
                        );
                        let cap = (s + INCREMENTAL_HEADROOM).min(options.max_stages);
                        warm.enc = IncrementalEncoding::build(problem, cap, encode);
                        warm.reported = Stats::default();
                        if let Some(h) = hint {
                            warm.enc.seed_phase_hint(h);
                        }
                    }
                    schedule =
                        tighten_transfers_incremental(&mut warm.enc, s, deadline, cancel, schedule);
                }
                let provenance = if bracketed {
                    state.bracket_provenance(s, sat_found)
                } else {
                    state.sat_provenance()
                };
                let stats = warm.enc.stats();
                state.counters.absorb(
                    stats_delta(stats, warm.reported),
                    warm.enc.clause_db_bytes(),
                );
                warm.reported = stats;
                state.report(Some(schedule), provenance)
            }
            None => {
                let stats = warm.enc.stats();
                state.counters.absorb(
                    stats_delta(stats, warm.reported),
                    warm.enc.clause_db_bytes(),
                );
                warm.reported = stats;
                state.fallback(problem, options.heuristic_fallback, hint.cloned())
            }
        }
    }
}

/// This run's share of cumulative solver stats: monotone counters
/// subtract the previously reported totals; instantaneous gauges (live
/// learnt clauses, post-reduction snapshots) report their current value.
fn stats_delta(cur: Stats, prev: Stats) -> Stats {
    Stats {
        conflicts: cur.conflicts.saturating_sub(prev.conflicts),
        decisions: cur.decisions.saturating_sub(prev.decisions),
        propagations: cur.propagations.saturating_sub(prev.propagations),
        restarts: cur.restarts.saturating_sub(prev.restarts),
        learnt_clauses: cur.learnt_clauses,
        deleted_clauses: cur.deleted_clauses.saturating_sub(prev.deleted_clauses),
        exported: cur.exported.saturating_sub(prev.exported),
        imported: cur.imported.saturating_sub(prev.imported),
        import_hits: cur.import_hits.saturating_sub(prev.import_hits),
        simplified_clauses: cur
            .simplified_clauses
            .saturating_sub(prev.simplified_clauses),
        learnt_after_reduce: cur.learnt_after_reduce,
        arena_bytes_after_reduce: cur.arena_bytes_after_reduce,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nasp_arch::{validate_schedule, ArchConfig, Layout};
    use std::time::Duration;

    fn fig2_problem() -> Problem {
        Problem::from_gates(
            ArchConfig::paper(Layout::BottomStorage),
            3,
            vec![(0, 1), (1, 2)],
        )
    }

    #[test]
    fn session_matches_solve_shim() {
        let p = fig2_problem();
        let via_fn = crate::solve::solve(&p, &SolveOptions::default());
        let mut session = Engine::new().session(p.clone());
        let via_session = session.run(&SolveOptions::default());
        assert_eq!(via_fn.provenance, via_session.provenance);
        assert_eq!(via_fn.proven_lb, via_session.proven_lb);
        assert_eq!(via_fn.log, via_session.log);
        let sf = via_fn.schedule.expect("schedule");
        let ss = via_session.schedule.expect("schedule");
        assert_eq!(sf.stages.len(), ss.stages.len());
        assert_eq!(sf.num_transfer(), ss.num_transfer());
    }

    #[test]
    fn warm_rerun_reports_fewer_conflicts() {
        // The acceptance criterion: a repeat query against a warm session
        // reports fewer conflicts than the cold solve of the same request.
        let code = nasp_qec::catalog::perfect5();
        let circuit = nasp_qec::graph_state::synthesize(&code.zero_state_stabilizers())
            .expect("synthesizable");
        let p = Problem::new(ArchConfig::paper(Layout::BottomStorage), &circuit);
        let mut session = Engine::new().session(p.clone());
        let opts = SolveOptions::builder()
            .time_budget(Duration::from_secs(30))
            .build();
        let cold = session.run(&opts);
        assert!(session.is_warm());
        let warm = session.run(&opts);
        assert_eq!(cold.provenance, warm.provenance);
        assert_eq!(cold.proven_lb, warm.proven_lb);
        assert!(cold.sat_conflicts > 0, "cold run must do real work");
        assert!(
            warm.sat_conflicts < cold.sat_conflicts,
            "warm rerun must ride retained clauses: cold {} vs warm {}",
            cold.sat_conflicts,
            warm.sat_conflicts
        );
        let s = warm.schedule.expect("schedule");
        assert!(validate_schedule(&s, &p.gates).is_empty());
    }

    #[test]
    fn pre_signalled_cancel_degrades_fast_and_keeps_session_reusable() {
        let code = nasp_qec::catalog::perfect5();
        let circuit = nasp_qec::graph_state::synthesize(&code.zero_state_stabilizers())
            .expect("synthesizable");
        let p = Problem::new(ArchConfig::paper(Layout::BottomStorage), &circuit);
        let mut session = Engine::new().session(p.clone());
        let opts = SolveOptions::builder()
            .time_budget(Duration::from_secs(60))
            .build();

        // Cancel already raised: the run must come back long before the
        // 60 s budget with the fallback answer.
        let cancel = Terminator::new();
        cancel.signal();
        let start = Instant::now();
        let report = session.run_with_cancel(&opts, Some(&cancel));
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "cancelled run must not ride out the budget"
        );
        assert!(!report.is_optimal(), "nothing was proved");
        assert!(
            report.proven_lb >= 1,
            "the degree bound still provides a lower bound"
        );
        let s = report.schedule.expect("heuristic fallback still answers");
        assert!(validate_schedule(&s, &p.gates).is_empty());

        // The same session, cancel cleared, still solves to optimality.
        cancel.clear();
        let full = session.run_with_cancel(&opts, Some(&cancel));
        assert!(full.is_optimal(), "session survived the cancelled run");
    }

    #[test]
    fn cancel_mid_portfolio_run_stops_the_round() {
        let code = nasp_qec::catalog::perfect5();
        let circuit = nasp_qec::graph_state::synthesize(&code.zero_state_stabilizers())
            .expect("synthesizable");
        let p = Problem::new(ArchConfig::paper(Layout::BottomStorage), &circuit);
        let mut session = Engine::new().session(p);
        let opts = SolveOptions::builder()
            .time_budget(Duration::from_secs(60))
            .portfolio(2)
            .build();
        let cancel = Terminator::new();
        let flag = cancel.clone();
        let signaller = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            flag.signal();
        });
        let start = Instant::now();
        let report = session.run_with_cancel(&opts, Some(&cancel));
        signaller.join().unwrap();
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "cancel must cut the portfolio short of its budget"
        );
        // Either the race finished before the signal landed (tiny
        // instance) or it was cancelled — both must leave a usable
        // report.
        assert!(report.schedule.is_some() || report.proven_lb >= 1);
    }

    #[test]
    fn history_accumulates_per_run_reports() {
        let p = fig2_problem();
        let mut session = Engine::new().session(p);
        assert_eq!(session.runs(), 0);
        assert!(!session.is_warm());
        let first = session.run(&SolveOptions::default());
        let second = session.run(&SolveOptions::default());
        assert_eq!(session.runs(), 2);
        assert_eq!(session.history()[0].proven_lb, first.proven_lb);
        assert_eq!(session.history()[1].proven_lb, second.proven_lb);
        // Per-run deltas: the sum of per-run conflicts stays sane (the
        // second report must not re-bill the first run's effort).
        assert!(second.sat_conflicts <= first.sat_conflicts);
    }

    #[test]
    fn changed_encode_options_rebuild_soundly() {
        let p = fig2_problem();
        let mut session = Engine::new().session(p.clone());
        let defaults = SolveOptions::default();
        let relaxed = SolveOptions::builder()
            .encode(EncodeOptions {
                nonempty_exec: false,
                ..EncodeOptions::default()
            })
            .build();
        let a = session.run(&defaults);
        let b = session.run(&relaxed);
        let c = session.run(&defaults);
        // All three agree on the minimum (the strengthening is
        // minimality-preserving); the middle run forced a rebuild.
        let (sa, sb, sc) = (
            a.schedule.expect("a").stages.len(),
            b.schedule.expect("b").stages.len(),
            c.schedule.expect("c").stages.len(),
        );
        assert_eq!(sa, sb);
        assert_eq!(sb, sc);
    }

    #[test]
    fn empty_problem_session_is_trivial() {
        let p = Problem::from_gates(ArchConfig::paper(Layout::NoShielding), 3, vec![]);
        let mut session = Engine::new().session(p);
        let r = session.run(&SolveOptions::default());
        assert!(r.is_optimal());
        assert_eq!(r.schedule.expect("schedule").stages.len(), 0);
        assert!(!session.is_warm(), "no encoding needed for no gates");
    }

    #[test]
    fn certified_runs_agree_with_plain_on_both_back_ends() {
        let p = fig2_problem();
        let plain = crate::solve::solve(&p, &SolveOptions::default());
        for incremental in [true, false] {
            let opts = SolveOptions::builder()
                .incremental(incremental)
                .certify(true)
                .build();
            let certified = crate::solve::solve(&p, &opts);
            assert!(certified.certified, "incremental={incremental}");
            assert!(
                certified.proof.rounds_certified > 0,
                "fig. 2 needs 2 stages, so at least one round is refuted"
            );
            assert!(certified.proof.proof_bytes > 0 || certified.proof.rounds_certified > 0);
            assert_eq!(certified.provenance, plain.provenance);
            assert_eq!(certified.proven_lb, plain.proven_lb);
            assert_eq!(
                certified.schedule.as_ref().expect("schedule").stages.len(),
                plain.schedule.as_ref().expect("schedule").stages.len(),
            );
        }
        assert_eq!(plain.proof, crate::solve::ProofStats::default());
        assert!(!plain.certified);
    }

    #[test]
    fn warm_session_separates_certified_and_plain_encodings() {
        // Alternating certified and uncertified runs must not share warm
        // solver state: the proof flag is part of the encode key, so each
        // switch rebuilds, and both flavours keep answering correctly.
        let p = fig2_problem();
        let mut session = Engine::new().session(p);
        let plain = SolveOptions::default();
        let cert = SolveOptions::builder().certify(true).build();
        let a = session.run(&plain);
        let b = session.run(&cert);
        let c = session.run(&plain);
        assert!(!a.certified && b.certified && !c.certified);
        assert!(b.proof.rounds_certified > 0);
        let stages = |r: &SolveReport| r.schedule.as_ref().expect("schedule").stages.len();
        assert_eq!(stages(&a), stages(&b));
        assert_eq!(stages(&b), stages(&c));
    }

    #[test]
    fn corrupted_proofs_degrade_to_uncertified_but_keep_the_answer() {
        let p = fig2_problem();
        let plain = crate::solve::solve(&p, &SolveOptions::default());
        for incremental in [true, false] {
            let opts = SolveOptions::builder()
                .incremental(incremental)
                .certify(true)
                .proof_corrupt_every(1)
                .build();
            let r = crate::solve::solve(&p, &opts);
            assert!(
                !r.certified,
                "every proof corrupted, none may certify (incremental={incremental})"
            );
            assert_eq!(r.proof.rounds_certified, 0);
            assert_eq!(r.provenance, plain.provenance);
            assert_eq!(r.proven_lb, plain.proven_lb);
            assert_eq!(
                r.schedule.as_ref().expect("schedule").stages.len(),
                plain.schedule.as_ref().expect("schedule").stages.len(),
            );
        }
    }

    #[test]
    #[should_panic(expected = "invalid SolveOptions")]
    fn certify_rejects_the_portfolio() {
        let p = fig2_problem();
        let opts = SolveOptions::builder().certify(true).portfolio(2).build();
        crate::solve::solve(&p, &opts);
    }

    #[test]
    #[should_panic(expected = "invalid SolveOptions")]
    fn certify_rejects_cube_and_conquer() {
        let p = fig2_problem();
        let opts = SolveOptions::builder()
            .certify(true)
            .cube(Some(crate::solve::CubeOptions::default()))
            .build();
        crate::solve::solve(&p, &opts);
    }

    #[test]
    fn scratch_and_portfolio_leave_warm_state_alone() {
        let p = fig2_problem();
        let mut session = Engine::new().session(p);
        session.run(&SolveOptions::default());
        assert!(session.is_warm());
        let scratch = SolveOptions::builder().incremental(false).build();
        let r = session.run(&scratch);
        assert!(r.schedule.is_some());
        assert!(session.is_warm(), "scratch run must not drop warm state");
    }
}
