//! Problem statement: the CZ gates to schedule on a given architecture.

use nasp_arch::ArchConfig;
use nasp_qec::StatePrepCircuit;
use serde::{Deserialize, Serialize};

/// A state-preparation scheduling problem (the paper's problem statement,
/// Sec. III): realize a set of CZ gates on a zoned architecture with
/// Rydberg beams, trap transfers and shuttling.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Problem {
    /// Target architecture (grid, AOD resources, zone layout).
    pub config: ArchConfig,
    /// Number of physical qubits.
    pub num_qubits: usize,
    /// The CZ gates, as unordered qubit pairs (`a < b`).
    pub gates: Vec<(usize, usize)>,
}

impl Problem {
    /// Builds a problem from a synthesized state-preparation circuit.
    ///
    /// # Panics
    ///
    /// Panics if a gate references a qubit outside `0..num_qubits` or is a
    /// self-loop.
    pub fn new(config: ArchConfig, circuit: &StatePrepCircuit) -> Self {
        Self::from_gates(config, circuit.num_qubits, circuit.cz_edges.clone())
    }

    /// Builds a problem from an explicit gate list.
    ///
    /// # Panics
    ///
    /// Panics if a gate references a qubit outside `0..num_qubits` or is a
    /// self-loop.
    pub fn from_gates(config: ArchConfig, num_qubits: usize, gates: Vec<(usize, usize)>) -> Self {
        let gates: Vec<(usize, usize)> = gates
            .into_iter()
            .map(|(a, b)| {
                assert!(a != b, "self-loop CZ ({a},{a})");
                assert!(
                    a < num_qubits && b < num_qubits,
                    "gate ({a},{b}) outside 0..{num_qubits}"
                );
                if a < b {
                    (a, b)
                } else {
                    (b, a)
                }
            })
            .collect();
        Problem {
            config,
            num_qubits,
            gates,
        }
    }

    /// Gates acting on qubit `q`.
    pub fn gates_of(&self, q: usize) -> Vec<usize> {
        self.gates
            .iter()
            .enumerate()
            .filter(|(_, &(a, b))| a == q || b == q)
            .map(|(i, _)| i)
            .collect()
    }

    /// Maximum CZ degree — a lower bound on the number of Rydberg stages
    /// (two gates on one qubit can never share a beam, Eq. 13).
    pub fn max_degree(&self) -> usize {
        let mut deg = vec![0usize; self.num_qubits];
        for &(a, b) in &self.gates {
            deg[a] += 1;
            deg[b] += 1;
        }
        deg.into_iter().max().unwrap_or(0)
    }

    /// Lower bound on the total number of stages `S`.
    ///
    /// At least `max_degree` execution stages are needed; a schedule with
    /// no gates needs no stages.
    pub fn stage_lower_bound(&self) -> usize {
        self.max_degree()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nasp_arch::Layout;

    #[test]
    fn degree_bound() {
        let cfg = ArchConfig::paper(Layout::NoShielding);
        let p = Problem::from_gates(cfg, 4, vec![(0, 1), (0, 2), (0, 3), (1, 2)]);
        assert_eq!(p.max_degree(), 3);
        assert_eq!(p.stage_lower_bound(), 3);
        assert_eq!(p.gates_of(0), vec![0, 1, 2]);
        assert_eq!(p.gates_of(3), vec![2]);
    }

    #[test]
    fn gates_normalized() {
        let cfg = ArchConfig::paper(Layout::NoShielding);
        let p = Problem::from_gates(cfg, 3, vec![(2, 0)]);
        assert_eq!(p.gates, vec![(0, 2)]);
    }

    #[test]
    #[should_panic]
    fn self_loop_rejected() {
        let cfg = ArchConfig::paper(Layout::NoShielding);
        let _ = Problem::from_gates(cfg, 3, vec![(1, 1)]);
    }
}
