//! Portfolio search: K diversified solver workers race every round of the
//! iterative-deepening sweep, first definitive answer wins (DESIGN.md §8).
//!
//! The sequential drivers in [`crate::solve`] walk the stage counts
//! `S = lb, lb+1, …` and then tighten the transfer count — a sequence of
//! *rounds*, each a single satisfiability query with an objective verdict.
//! The portfolio keeps that round structure and parallelizes *within* a
//! round: every worker owns a full encoding of the same [`Problem`] built
//! over its own diversified [`SolverConfig`] (decision-noise seed, Luby
//! restart unit, initial phase polarity, activity-reset policy), all
//! workers solve the same query concurrently, and the first SAT/UNSAT
//! answer cancels the rest through a shared [`Terminator`] polled inside
//! the CDCL loop.
//!
//! Because SAT and UNSAT are properties of the query — not of the solver
//! that happens to answer first — racing changes *which model* is found
//! and *how fast*, never the verdict. The reported minima (`S`, and `#T`
//! after the tightening loop runs to UNSAT) are therefore identical to the
//! single-solver search; only wall clock and the winning schedule's
//! incidental details may differ. Worker 0 always runs the untouched
//! default configuration, so the portfolio is never *less* capable than
//! the sequential solver on any round.
//!
//! Workers are long-lived within one `solve` call (scoped threads): the
//! incremental back-end keeps each worker's solver warm across rounds
//! exactly like the sequential sweep, including learnt-clause retention
//! and the stage-cap rebuild policy.
//!
//! With [`crate::SolveOptions::share`] on (the default) the workers are
//! not merely racing but *cooperating*: one lock-free [`ClauseExchange`]
//! per `solve` call carries each worker's low-LBD learnt clauses to the
//! other K−1, who import them at every return to decision level zero.
//! Soundness rests on variable alignment — all workers deterministically
//! build identical encodings of the same [`Problem`] (diversification is
//! config-only), and shared clauses are tagged with the encoding's stage
//! cap as the alignment epoch so scratch rebuilds can never smuggle a
//! clause across incompatible variable numberings (DESIGN.md §9). A debug
//! assertion cross-checks that all workers agree on `num_vars` each round.

use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use nasp_arch::Schedule;
use nasp_smt::{Budget, ClauseExchange, ShareHandle, SolveResult, SolverConfig, Terminator};

use crate::encoding::{Encoding, IncrementalEncoding};
use crate::problem::Problem;
use crate::solve::{
    Provenance, SatCounters, SearchMode, SearchState, SolveOptions, SolveReport, StagePlanner,
    INCREMENTAL_HEADROOM,
};

/// One search round, broadcast to every worker.
#[derive(Debug, Clone, Copy)]
enum Query {
    /// Solve with exactly `s` active stages.
    Stage { s: usize },
    /// Solve at `s` stages with at most `max_transfers` transfer stages.
    Tighten { s: usize, max_transfers: usize },
    /// Shut down (no response expected).
    Quit,
}

/// A worker's answer to one round.
struct Response {
    worker: usize,
    result: SolveResult,
    /// The decoded model; `Some` iff `result == Sat`.
    schedule: Option<Schedule>,
    /// Cumulative solver effort of this worker so far.
    counters: SatCounters,
    /// SAT variables of the worker's encoding when it answered — the
    /// variable-alignment invariant clause sharing rests on; the
    /// orchestrator debug-asserts all workers agree every round.
    num_vars: usize,
    /// The worker panicked instead of answering (sent by its unwind
    /// guard); the orchestrator re-raises instead of deadlocking.
    died: bool,
}

/// Sends a death notice if the owning worker unwinds from a panic, so the
/// orchestrator (which counts exactly K responses per round) learns about
/// the loss instead of blocking on `recv()` forever. On the orchestrator's
/// re-raise its channel senders drop, the surviving workers' `recv()` fail
/// and they exit, and the scope join propagates the panic.
struct DeathNotice {
    worker: usize,
    tx: Sender<Response>,
}

impl Drop for DeathNotice {
    fn drop(&mut self) {
        if std::thread::panicking() {
            let _ = self.tx.send(Response {
                worker: self.worker,
                result: SolveResult::Unknown,
                schedule: None,
                counters: SatCounters::default(),
                num_vars: 0,
                died: true,
            });
        }
    }
}

/// The orchestrator's handle on the running workers.
struct Rounds {
    query_txs: Vec<Sender<Query>>,
    resp_rx: Receiver<Response>,
    stop: Terminator,
    /// External cooperative-cancellation flag (client abandoned, server
    /// draining). Distinct from `stop`, which is the *round-local* race
    /// terminator cleared after every round: when `cancel` fires the
    /// orchestrator relays it into `stop` so the in-flight round unwinds,
    /// and the sweep (which polls `cancel` via `SearchState::expired`)
    /// never starts another.
    cancel: Option<Terminator>,
    wins: Vec<u64>,
    latest: Vec<SatCounters>,
}

impl Rounds {
    /// Broadcasts one query, waits for all workers, returns the first
    /// definitive verdict (and its model). The winner's answer triggers
    /// the shared terminator, so the losers return `Unknown` within their
    /// next poll; all K responses are always collected before the round
    /// ends, keeping the workers in lockstep.
    fn run(&mut self, q: Query) -> (SolveResult, Option<Schedule>) {
        debug_assert!(!self.stop.is_signalled(), "terminator armed between rounds");
        for tx in &self.query_txs {
            tx.send(q).expect("worker thread alive");
        }
        let mut verdict = SolveResult::Unknown;
        let mut schedule = None;
        let mut winner: Option<usize> = None;
        let mut round_vars: Option<usize> = None;
        for _ in 0..self.query_txs.len() {
            // Poll the external cancel while waiting: a blocking recv()
            // would leave an abandoned request racing to the full budget.
            let r = loop {
                if self.cancel.as_ref().is_some_and(Terminator::is_signalled) {
                    self.stop.signal();
                }
                match self.resp_rx.recv_timeout(Duration::from_millis(10)) {
                    Ok(r) => break r,
                    Err(RecvTimeoutError::Timeout) => continue,
                    Err(RecvTimeoutError::Disconnected) => {
                        unreachable!("worker thread responds")
                    }
                }
            };
            if r.died {
                panic!("portfolio worker {} panicked mid-round", r.worker);
            }
            // Variable-alignment invariant behind clause sharing: every
            // worker builds the same encoding, so per-round SAT variable
            // counts must agree exactly (DESIGN.md §9).
            match round_vars {
                None => round_vars = Some(r.num_vars),
                Some(v) => debug_assert_eq!(
                    v, r.num_vars,
                    "portfolio workers disagree on num_vars — encodings misaligned"
                ),
            }
            self.latest[r.worker] = r.counters;
            if r.result != SolveResult::Unknown {
                match winner {
                    None => {
                        winner = Some(r.worker);
                        verdict = r.result;
                        schedule = r.schedule;
                        self.stop.signal();
                    }
                    Some(_) => {
                        // A second worker finished before noticing the
                        // terminator; soundness demands it agrees.
                        assert_eq!(verdict, r.result, "portfolio workers disagree on a verdict");
                    }
                }
            }
        }
        self.stop.clear();
        if let Some(w) = winner {
            self.wins[w] += 1;
        }
        (verdict, schedule)
    }

    fn shutdown(&mut self) {
        for tx in &self.query_txs {
            // A worker that already exited (hung-up channel) is fine.
            let _ = tx.send(Query::Quit);
        }
    }
}

/// The portfolio driver: same sweep as the sequential back-ends, each
/// round raced by `options.portfolio` diversified workers.
pub(crate) fn solve_portfolio(
    problem: &Problem,
    options: &SolveOptions,
    start: Instant,
    deadline: Instant,
    cancel: Option<&Terminator>,
    hint: Option<&Schedule>,
) -> SolveReport {
    let k = options.portfolio.max(2);
    let lb = problem.stage_lower_bound().max(1);
    let ub = hint.map(|h| h.stages.len());
    let mut state = SearchState::new(start, deadline, lb)
        .with_cancel(cancel.cloned())
        .with_heuristic_ub(ub);
    if lb > options.max_stages {
        let mut report = state.fallback(problem, options.heuristic_fallback, hint.cloned());
        report.portfolio_workers = k;
        report.worker_wins = vec![0; k];
        report.worker_exported = vec![0; k];
        report.worker_imported = vec![0; k];
        report.worker_import_hits = vec![0; k];
        return report;
    }

    let stop = Terminator::new();
    // One clause exchange per solve call, attached to every worker: the
    // cooperative channel that turns K racers into a team. Sized from the
    // base configuration (worker 0's untouched default).
    let exchange: Option<Arc<ClauseExchange>> = options.share.then(|| {
        Arc::new(ClauseExchange::new(
            options.encode.solver.share_ring_capacity,
            k,
        ))
    });
    std::thread::scope(|scope| {
        let (resp_tx, resp_rx) = channel::<Response>();
        let mut query_txs = Vec::with_capacity(k);
        for worker in 0..k {
            let (q_tx, q_rx) = channel::<Query>();
            query_txs.push(q_tx);
            let resp_tx = resp_tx.clone();
            let stop = stop.clone();
            let share = exchange.as_ref().map(|e| e.handle(worker));
            let options = *options;
            scope.spawn(move || {
                worker_loop(
                    worker, problem, &options, deadline, q_rx, resp_tx, stop, share, hint,
                )
            });
        }
        drop(resp_tx);
        let mut rounds = Rounds {
            query_txs,
            resp_rx,
            stop,
            cancel: cancel.cloned(),
            wins: vec![0; k],
            latest: vec![SatCounters::default(); k],
        };

        let bracketed = options.search_mode != SearchMode::Deepening;
        let mut planner = StagePlanner::new(options.search_mode, lb, ub, options.max_stages);
        let mut incumbent: Option<Schedule> = None;
        while let Some(s) = planner.next() {
            if state.expired() {
                break;
            }
            let (result, model) = rounds.run(Query::Stage { s });
            if bracketed {
                state.record_probe(s, result);
            } else {
                state.record(s, result);
            }
            planner.on_result(s, result);
            if result == SolveResult::Sat {
                incumbent = Some(model.expect("winning Sat response carries a schedule"));
                if !bracketed {
                    break;
                }
            }
        }

        // Same adoption rule as the sequential back-ends: a bracketed
        // sweep that refuted every count below `S_h` proved the heuristic
        // schedule stage-optimal without ever racing a model for it.
        let sat_found = incumbent.is_some();
        let adopted = match (&incumbent, hint) {
            (None, Some(h)) if bracketed => {
                let s_h = h.stages.len();
                (s_h <= options.max_stages && state.proven_lb() >= s_h).then(|| (*h).clone())
            }
            _ => None,
        };
        let outcome: Option<(Schedule, Provenance)> = incumbent.or(adopted).map(|mut best| {
            let s = best.stages.len();
            if options.minimize_transfers {
                loop {
                    let current = best.num_transfer();
                    if current == 0 || state.expired() {
                        break;
                    }
                    let (r, m) = rounds.run(Query::Tighten {
                        s,
                        max_transfers: current - 1,
                    });
                    match r {
                        SolveResult::Sat => {
                            best = m.expect("winning Sat response carries a schedule");
                            debug_assert!(best.num_transfer() < current);
                        }
                        // Unsat: `current` is minimal; Unknown: budget.
                        SolveResult::Unsat | SolveResult::Unknown => break,
                    }
                }
            }
            let provenance = if bracketed {
                state.bracket_provenance(s, sat_found)
            } else {
                state.sat_provenance()
            };
            (best, provenance)
        });

        rounds.shutdown();
        // The scope joins every worker here; each worker's cumulative
        // counters arrived with its last response.
        for c in &rounds.latest {
            state.counters.merge(*c);
        }
        let mut report = match outcome {
            Some((schedule, provenance)) => state.report(Some(schedule), provenance),
            None => state.fallback(problem, options.heuristic_fallback, hint.cloned()),
        };
        report.portfolio_workers = k;
        report.worker_exported = rounds.latest.iter().map(|c| c.exported).collect();
        report.worker_imported = rounds.latest.iter().map(|c| c.imported).collect();
        report.worker_import_hits = rounds.latest.iter().map(|c| c.import_hits).collect();
        report.worker_wins = rounds.wins;
        report
    })
}

/// One worker: owns its diversified encoding(s), answers queries until
/// [`Query::Quit`]. Mirrors the sequential back-ends' per-round behaviour
/// — warm incremental solver with stage-cap rebuilds, or a cold scratch
/// encoding per round — under its own [`SolverConfig`], with the shared
/// clause exchange (if any) riding in each round's [`Budget`].
#[allow(clippy::too_many_arguments)]
fn worker_loop(
    id: usize,
    problem: &Problem,
    options: &SolveOptions,
    deadline: Instant,
    queries: Receiver<Query>,
    responses: Sender<Response>,
    stop: Terminator,
    share: Option<ShareHandle>,
    hint: Option<&Schedule>,
) {
    let guard = DeathNotice {
        worker: id,
        tx: responses,
    };
    let mut encode = options.encode;
    encode.solver = SolverConfig::diversified(id, options.seed);
    let lb = problem.stage_lower_bound().max(1);
    let mut counters = SatCounters::default();
    // Built lazily on the first query: a search whose deadline already
    // passed sends Quit without any round, and K unused encodings would
    // be pure waste.
    let mut enc: Option<IncrementalEncoding> = None;

    while let Ok(q) = queries.recv() {
        let (s, max_transfers) = match q {
            Query::Quit => break,
            Query::Stage { s } => (s, None),
            Query::Tighten { s, max_transfers } => (s, Some(max_transfers)),
        };
        // Variable numbering is a pure function of the encoding's stage
        // cap, so the cap is the alignment epoch for shared clauses: the
        // warm incremental encoding keeps one epoch for its whole life
        // (sharing flows across rounds), while scratch encodings re-epoch
        // per stage count (DESIGN.md §9).
        let budget_for = |epoch: usize| Budget {
            deadline: Some(deadline),
            stop: Some(stop.clone()),
            share: share.as_ref().map(|h| h.at_epoch(epoch as u64)),
            ..Budget::default()
        };
        let (result, schedule, num_vars) = if options.incremental {
            let inc = enc.get_or_insert_with(|| {
                let cap = (lb + INCREMENTAL_HEADROOM).min(options.max_stages);
                let mut built = IncrementalEncoding::build(problem, cap, encode);
                // Seeding only sets saved phases (no variables, no
                // clauses), so the num_vars alignment invariant holds
                // across workers whether or not their config honours it.
                if let Some(h) = hint {
                    built.seed_phase_hint(h);
                }
                built
            });
            if s > inc.max_stages() {
                // Outgrew the cap: fold the old solver's effort into the
                // running totals and rebuild (rare, like the sequential
                // sweep). The rebuilt encoding's new cap is a new epoch —
                // clauses from the old numbering stay quarantined.
                counters.absorb(inc.stats(), inc.clause_db_bytes());
                let cap = (s + INCREMENTAL_HEADROOM).min(options.max_stages);
                *inc = IncrementalEncoding::build(problem, cap, encode);
                if let Some(h) = hint {
                    inc.seed_phase_hint(h);
                }
            }
            let budget = budget_for(inc.max_stages());
            let result = match max_transfers {
                None => inc.solve_at(s, budget),
                Some(kk) => inc.solve_at_with_max_transfers(s, kk, budget),
            };
            let schedule = (result == SolveResult::Sat).then(|| inc.decode());
            (result, schedule, inc.size().0)
        } else {
            let mut cold = Encoding::build(problem, s, encode);
            if let Some(h) = hint {
                cold.seed_phase_hint(h);
            }
            if let Some(kk) = max_transfers {
                cold.assert_max_transfers(kk);
            }
            let result = cold.solve(budget_for(s));
            let schedule = (result == SolveResult::Sat).then(|| cold.decode());
            let num_vars = cold.size().0;
            counters.absorb(cold.stats(), cold.clause_db_bytes());
            (result, schedule, num_vars)
        };
        let mut snapshot = counters;
        if let Some(inc) = &enc {
            snapshot.absorb(inc.stats(), inc.clause_db_bytes());
        }
        let sent = guard.tx.send(Response {
            worker: id,
            result,
            schedule,
            counters: snapshot,
            num_vars,
            died: false,
        });
        if sent.is_err() {
            break; // orchestrator is gone; nothing left to do
        }
    }
}
