//! Diagnostic: runs the full SMT driver on every catalog code × layout with
//! a configurable budget and prints the per-S exploration log.
//!
//! Run with:
//! `cargo run -p nasp-core --release --example smt_probe -- [budget_secs]`

use nasp_arch::{validate_schedule, ArchConfig, Layout};
use nasp_core::{solve, Problem, SolveOptions};
use nasp_qec::{catalog, graph_state};
use std::time::{Duration, Instant};

fn main() {
    let budget: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);
    for code in [
        "steane",
        "surface",
        "shor",
        "hamming",
        "tetrahedral",
        "honeycomb",
    ] {
        let c = catalog::by_name(code).expect("known code");
        let circ = graph_state::synthesize(&c.zero_state_stabilizers()).expect("synth");
        for layout in [
            Layout::NoShielding,
            Layout::BottomStorage,
            Layout::DoubleSidedStorage,
        ] {
            let p = Problem::new(ArchConfig::paper(layout), &circ);
            let t0 = Instant::now();
            let opts = SolveOptions::builder()
                .time_budget(Duration::from_secs(budget))
                .build();
            let r = solve(&p, &opts);
            let s = r.schedule.as_ref().expect("schedule always produced");
            let ok = validate_schedule(s, &p.gates).is_empty();
            println!(
                "{code:11} {layout:?}: {:?} #R={} #T={} valid={ok} in {:.1}s log={:?}",
                r.provenance,
                s.num_rydberg(),
                s.num_transfer(),
                t0.elapsed().as_secs_f32(),
                r.log
            );
        }
    }
}
