//! Diagnostic: runs the heuristic scheduler on every catalog code × layout
//! and reports validity and schedule size (useful when tuning the planner).
//!
//! Run with: `cargo run -p nasp-core --release --example debug_heuristic`

use nasp_arch::{validate_schedule, ArchConfig, Layout};
use nasp_core::Problem;
use nasp_qec::{catalog, graph_state};

fn main() {
    for code in [
        "steane",
        "surface",
        "shor",
        "hamming",
        "tetrahedral",
        "honeycomb",
        "perfect5",
    ] {
        for layout in [
            Layout::NoShielding,
            Layout::BottomStorage,
            Layout::DoubleSidedStorage,
        ] {
            let c = catalog::by_name(code).expect("known code");
            let circ = graph_state::synthesize(&c.zero_state_stabilizers()).expect("synth");
            let p = Problem::new(ArchConfig::paper(layout), &circ);
            match nasp_core::heuristic::schedule_unchecked(&p) {
                None => println!("{code:12} {layout:?}: PLANNER FAILED"),
                Some(s) => {
                    let v = validate_schedule(&s, &p.gates);
                    if v.is_empty() {
                        println!(
                            "{code:12} {layout:?}: ok  #R={} #T={}",
                            s.num_rydberg(),
                            s.num_transfer()
                        );
                    } else {
                        println!(
                            "{code:12} {layout:?}: {} violations; first: {}",
                            v.len(),
                            v[0]
                        );
                    }
                }
            }
        }
    }
}
