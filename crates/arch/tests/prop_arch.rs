//! Property tests for the architecture model: geometry invariants, metric
//! monotonicity, and validator soundness under random mutations of a known
//! valid schedule.

use nasp_arch::{
    evaluate, validate_schedule, ArchConfig, BoundaryOps, Layout, OpParams, Position, QubitState,
    Schedule, Stage, StageKind, Trap,
};
use proptest::prelude::*;

fn any_layout() -> impl Strategy<Value = Layout> {
    prop_oneof![
        Just(Layout::NoShielding),
        Just(Layout::BottomStorage),
        Just(Layout::DoubleSidedStorage),
    ]
}

fn any_position(cfg: ArchConfig) -> impl Strategy<Value = Position> {
    (
        0..=cfg.x_max,
        0..=cfg.y_max,
        -cfg.h_max..=cfg.h_max,
        -cfg.v_max..=cfg.v_max,
    )
        .prop_map(|(x, y, h, v)| Position { x, y, h, v })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `near` is symmetric, reflexive, and implies a small physical
    /// distance; distinct sites are never near.
    #[test]
    fn proximity_properties(layout in any_layout(), seed in 0u64..1_000_000) {
        let cfg = ArchConfig::paper(layout);
        let mut s = seed;
        let mut next = move |m: i64| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as i64).rem_euclid(m)
        };
        let a = Position {
            x: next(cfg.x_max + 1),
            y: next(cfg.y_max + 1),
            h: next(2 * cfg.h_max + 1) - cfg.h_max,
            v: next(2 * cfg.v_max + 1) - cfg.v_max,
        };
        let b = Position {
            x: next(cfg.x_max + 1),
            y: next(cfg.y_max + 1),
            h: next(2 * cfg.h_max + 1) - cfg.h_max,
            v: next(2 * cfg.v_max + 1) - cfg.v_max,
        };
        prop_assert!(a.near(&a, &cfg));
        prop_assert_eq!(a.near(&b, &cfg), b.near(&a, &cfg));
        if a.near(&b, &cfg) {
            // Near pairs are within the offset pitch times the radius.
            let d = a.distance_um(&b, &cfg);
            let bound = (cfg.radius as f64) * cfg.offset_pitch_um * 2.0_f64.sqrt();
            prop_assert!(d <= bound + 1e-9, "near pair {d} µm apart");
        }
        if a.site() != b.site() {
            prop_assert!(!a.near(&b, &cfg));
            // Different sites are at least (site pitch − 2·offset) apart.
            let d = a.distance_um(&b, &cfg);
            prop_assert!(d >= cfg.site_pitch_um - 2.0 * cfg.h_max as f64 - 1e-9);
        }
    }

    /// Physical coordinates: strictly monotone in grid coordinates, and
    /// rows in different zones are at least the zone gap apart.
    #[test]
    fn physical_geometry(layout in any_layout()) {
        let cfg = ArchConfig::paper(layout);
        for y in 1..=cfg.y_max {
            let gap = cfg.physical_y_um(y, 0) - cfg.physical_y_um(y - 1, 0);
            prop_assert!(gap >= cfg.site_pitch_um - 1e-9);
            if cfg.zone_of(y) != cfg.zone_of(y - 1) {
                prop_assert!(gap >= cfg.zone_gap_um - 1e-9);
            }
        }
        for x in 1..=cfg.x_max {
            let gap = cfg.physical_x_um(x, 0) - cfg.physical_x_um(x - 1, 0);
            prop_assert!((gap - cfg.site_pitch_um).abs() < 1e-9);
        }
    }

    /// ASP decreases (or stays equal) as operations get worse, and always
    /// stays in (0, 1].
    #[test]
    fn asp_monotone_in_fidelity(
        pos in any_position(ArchConfig::paper(Layout::BottomStorage)),
        cz_fidelity in 0.9f64..=1.0,
    ) {
        let cfg = ArchConfig::paper(Layout::BottomStorage);
        // One beam on a fixed pair plus one idler somewhere in storage.
        let pair_site = (3, 4);
        let mut idler = pos;
        idler.y = 0;
        idler.h = 0;
        idler.v = 0;
        let stage = Stage {
            kind: StageKind::Rydberg,
            qubits: vec![
                QubitState {
                    pos: Position::site_center(pair_site.0, pair_site.1),
                    trap: Trap::Slm,
                },
                QubitState {
                    pos: Position { x: pair_site.0, y: pair_site.1, h: 1, v: 0 },
                    trap: Trap::Aod { col: 0, row: 0 },
                },
                QubitState { pos: idler, trap: Trap::Slm },
            ],
        };
        let schedule = Schedule { config: cfg, num_qubits: 3, stages: vec![stage] };
        let base = OpParams::default();
        let worse = OpParams { cz_fidelity, ..OpParams::default() };
        let m_base = evaluate(&schedule, &base, BoundaryOps::default());
        let m_worse = evaluate(&schedule, &worse, BoundaryOps::default());
        prop_assert!(m_base.asp > 0.0 && m_base.asp <= 1.0);
        prop_assert!(m_worse.asp > 0.0 && m_worse.asp <= 1.0);
        if cz_fidelity <= base.cz_fidelity {
            prop_assert!(m_worse.asp <= m_base.asp + 1e-12);
        }
    }

    /// Mutating a valid one-beam schedule by teleporting a random qubit to
    /// a random position either keeps it valid or produces at least one
    /// violation — and a teleport onto an occupied trap is ALWAYS caught.
    #[test]
    fn validator_catches_collisions(
        target in any_position(ArchConfig::paper(Layout::BottomStorage)),
        victim in 0usize..3,
    ) {
        let cfg = ArchConfig::paper(Layout::BottomStorage);
        let qubits = vec![
            QubitState {
                pos: Position::site_center(0, 3),
                trap: Trap::Slm,
            },
            QubitState {
                pos: Position { x: 0, y: 3, h: 1, v: 0 },
                trap: Trap::Aod { col: 0, row: 0 },
            },
            QubitState {
                pos: Position::site_center(5, 0),
                trap: Trap::Slm,
            },
        ];
        let gates = vec![(0usize, 1usize)];
        let mut schedule = Schedule {
            config: cfg,
            num_qubits: 3,
            stages: vec![Stage { kind: StageKind::Rydberg, qubits }],
        };
        prop_assert!(validate_schedule(&schedule, &gates).is_empty());
        // Teleport the victim onto another qubit's exact position.
        let occupied: Vec<Position> = schedule.stages[0]
            .qubits
            .iter()
            .map(|q| q.pos)
            .collect();
        schedule.stages[0].qubits[victim].pos = target;
        let violations = validate_schedule(&schedule, &gates);
        if occupied
            .iter()
            .enumerate()
            .any(|(i, &p)| i != victim && p == target)
        {
            prop_assert!(!violations.is_empty(), "collision must be caught");
        }
    }
}
