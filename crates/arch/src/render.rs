//! ASCII rendering of schedules — a textual version of the paper's Figs. 1
//! and 2: one frame per stage showing the grid, zones, qubit positions and
//! trap types.

use std::fmt::Write as _;

use crate::config::Zone;
use crate::schedule::{Schedule, StageKind};

/// Renders a schedule as a sequence of ASCII frames (one per stage).
///
/// Legend: `[q]` = qubit `q` in an SLM trap, `(q)` = qubit `q` in an AOD
/// trap, `·` = empty interaction site; storage rows carry a `~` margin.
/// Qubit offsets within a site are not drawn; co-located gate pairs show as
/// two qubits in one cell.
///
/// # Examples
///
/// ```
/// use nasp_arch::{render_schedule, ArchConfig, Layout, Schedule};
///
/// let schedule = Schedule {
///     config: ArchConfig::paper(Layout::BottomStorage),
///     num_qubits: 0,
///     stages: vec![],
/// };
/// assert!(render_schedule(&schedule).contains("0 stages"));
/// ```
pub fn render_schedule(schedule: &Schedule) -> String {
    let cfg = &schedule.config;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "schedule: {} stages ({} Rydberg, {} transfer)",
        schedule.stages.len(),
        schedule.num_rydberg(),
        schedule.num_transfer()
    );
    for (t, stage) in schedule.stages.iter().enumerate() {
        match &stage.kind {
            StageKind::Rydberg => {
                let pairs = schedule.executed_pairs(t);
                let _ = writeln!(out, "-- stage {t}: RYDBERG BEAM, CZ {pairs:?}");
            }
            StageKind::Transfer(_) => {
                let (stored, loaded) = schedule.transferred(t);
                let _ = writeln!(
                    out,
                    "-- stage {t}: TRANSFER, store {stored:?} load {loaded:?}"
                );
            }
        }
        // Build the grid top-down (high y first, like the paper's figures).
        for y in (0..=cfg.y_max).rev() {
            let margin = match cfg.zone_of(y) {
                Zone::Entangling => ' ',
                Zone::Storage => '~',
            };
            let _ = write!(out, "  {margin} y{y} |");
            for x in 0..=cfg.x_max {
                let here: Vec<(usize, bool)> = stage
                    .qubits
                    .iter()
                    .enumerate()
                    .filter(|(_, qs)| qs.pos.site() == (x, y))
                    .map(|(q, qs)| (q, qs.trap.is_aod()))
                    .collect();
                let cell = match here.as_slice() {
                    [] => "  ·  ".to_string(),
                    [(q, aod)] => {
                        if *aod {
                            format!(" ({q:>2})")
                        } else {
                            format!(" [{q:>2}]")
                        }
                    }
                    many => {
                        let ids: Vec<String> = many.iter().map(|(q, _)| q.to_string()).collect();
                        format!("{:>5}", ids.join("+"))
                    }
                };
                let _ = write!(out, "{cell}");
            }
            let _ = writeln!(out, " |");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ArchConfig, Layout};
    use crate::geometry::Position;
    use crate::schedule::{QubitState, Stage, Trap};

    #[test]
    fn renders_qubits_and_zones() {
        let config = ArchConfig::paper(Layout::BottomStorage);
        let schedule = Schedule {
            config,
            num_qubits: 2,
            stages: vec![Stage {
                kind: StageKind::Rydberg,
                qubits: vec![
                    QubitState {
                        pos: Position::site_center(0, 3),
                        trap: Trap::Slm,
                    },
                    QubitState {
                        pos: Position {
                            x: 0,
                            y: 3,
                            h: 1,
                            v: 0,
                        },
                        trap: Trap::Aod { col: 0, row: 0 },
                    },
                ],
            }],
        };
        let text = render_schedule(&schedule);
        assert!(text.contains("RYDBERG BEAM"));
        assert!(text.contains("CZ [(0, 1)]"));
        assert!(text.contains("0+1"), "co-located pair cell: {text}");
        assert!(text.contains('~'), "storage margin shown");
    }

    #[test]
    fn empty_schedule_renders() {
        let schedule = Schedule {
            config: ArchConfig::paper(Layout::NoShielding),
            num_qubits: 0,
            stages: vec![],
        };
        assert!(render_schedule(&schedule).contains("0 stages"));
    }
}
