//! Fidelity and timing model: the Approximated Success Probability (ASP)
//! and execution-time computation of the paper's evaluation (Sec. V-A).
//!
//! `ASP = exp(−t_idle / T_eff) · Π F_g`, with the figures of merit from the
//! paper's table: CZ 0.995, faulty Rydberg identity 0.998, local RZ 0.999
//! (12 µs), global RY 0.9999 (1 µs), load/store 0.999 (200 µs), shuttling
//! lossless at 0.55 µs/µm; `T_eff` = 1 s.

use crate::config::Zone;
use crate::schedule::{Schedule, StageKind};
use serde::{Deserialize, Serialize};

/// Figures of merit for every operation type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpParams {
    /// CZ gate fidelity.
    pub cz_fidelity: f64,
    /// Fidelity of the faulty identity a Rydberg beam applies to an
    /// exposed idling qubit.
    pub rydberg_idle_fidelity: f64,
    /// Rydberg beam duration (µs).
    pub rydberg_duration_us: f64,
    /// Local RZ fidelity (used for the final Hadamard layer).
    pub local_rz_fidelity: f64,
    /// Local RZ duration (µs).
    pub local_rz_duration_us: f64,
    /// Global RY fidelity per qubit (used for |+⟩ initialization and the
    /// global part of Hadamards).
    pub global_ry_fidelity: f64,
    /// Global RY duration (µs).
    pub global_ry_duration_us: f64,
    /// Fidelity of one trap transfer (load or store) per qubit.
    pub transfer_fidelity: f64,
    /// Duration of a load or store operation (µs).
    pub transfer_duration_us: f64,
    /// Shuttling time per µm of displacement (µs/µm).
    pub shuttle_speed_us_per_um: f64,
    /// Effective idle coherence time `T_eff` (µs).
    pub t_eff_us: f64,
}

impl Default for OpParams {
    /// The paper's evaluation parameters.
    fn default() -> Self {
        OpParams {
            cz_fidelity: 0.995,
            rydberg_idle_fidelity: 0.998,
            rydberg_duration_us: 0.27,
            local_rz_fidelity: 0.999,
            local_rz_duration_us: 12.0,
            global_ry_fidelity: 0.9999,
            global_ry_duration_us: 1.0,
            transfer_fidelity: 0.999,
            transfer_duration_us: 200.0,
            shuttle_speed_us_per_um: 0.55,
            t_eff_us: 1e6,
        }
    }
}

/// Boundary costs of the circuit around the scheduled CZ core: the |+⟩
/// initialization and the final local-Clifford layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BoundaryOps {
    /// Number of qubits receiving a final Hadamard (local RZ + global RY).
    pub hadamards: usize,
    /// Number of qubits receiving a final S gate (local RZ).
    pub phase_gates: usize,
}

/// Metrics of one schedule — the paper's Table I columns.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduleMetrics {
    /// Number of Rydberg stages (`#R`).
    pub num_rydberg: usize,
    /// Number of transfer stages (`#T`).
    pub num_transfer: usize,
    /// Total schedule execution time in µs (the paper's 🕐 column, ms there).
    pub exec_time_us: f64,
    /// Accumulated idle time over all qubits (µs).
    pub idle_time_us: f64,
    /// Number of CZ gates executed.
    pub cz_count: usize,
    /// Number of (qubit, beam) exposures of idlers to the Rydberg beam.
    pub exposed_idlers: usize,
    /// Number of individual load/store qubit transfers.
    pub transfer_ops: usize,
    /// Approximated Success Probability.
    pub asp: f64,
}

impl ScheduleMetrics {
    /// Execution time in milliseconds (as printed in Table I).
    pub fn exec_time_ms(&self) -> f64 {
        self.exec_time_us / 1e3
    }
}

/// Evaluates a schedule under the fidelity/timing model.
///
/// `boundary` describes the non-scheduled parts of the circuit (the |+⟩
/// initialization and final Hadamard/S layer), which contribute fidelity
/// and time but no shuttling.
pub fn evaluate(schedule: &Schedule, params: &OpParams, boundary: BoundaryOps) -> ScheduleMetrics {
    let n = schedule.num_qubits as f64;
    let mut time_us = 0.0;
    let mut idle_us = 0.0;
    let mut log_fidelity = 0.0f64;
    let mut cz_count = 0usize;
    let mut exposed = 0usize;
    let mut transfer_ops = 0usize;

    // Initialization: global RY on all qubits (everyone busy).
    time_us += params.global_ry_duration_us;
    log_fidelity += n * params.global_ry_fidelity.ln();

    for (t, stage) in schedule.stages.iter().enumerate() {
        match &stage.kind {
            StageKind::Rydberg => {
                let pairs = schedule.executed_pairs(t);
                cz_count += pairs.len();
                let busy = 2 * pairs.len();
                // Idlers left inside the entangling zone suffer the faulty
                // identity.
                let gated: std::collections::HashSet<usize> =
                    pairs.iter().flat_map(|&(a, b)| [a, b]).collect();
                let exposed_here = stage
                    .qubits
                    .iter()
                    .enumerate()
                    .filter(|(q, qs)| {
                        !gated.contains(q) && schedule.config.zone_of(qs.pos.y) == Zone::Entangling
                    })
                    .count();
                exposed += exposed_here;
                log_fidelity += pairs.len() as f64 * params.cz_fidelity.ln();
                log_fidelity += exposed_here as f64 * params.rydberg_idle_fidelity.ln();
                time_us += params.rydberg_duration_us;
                idle_us += (n - busy as f64) * params.rydberg_duration_us;
            }
            StageKind::Transfer(_) => {
                let (stored, loaded) = schedule.transferred(t);
                transfer_ops += stored.len() + loaded.len();
                if !stored.is_empty() {
                    time_us += params.transfer_duration_us;
                    idle_us += (n - stored.len() as f64) * params.transfer_duration_us;
                    log_fidelity += stored.len() as f64 * params.transfer_fidelity.ln();
                }
                if !loaded.is_empty() {
                    time_us += params.transfer_duration_us;
                    idle_us += (n - loaded.len() as f64) * params.transfer_duration_us;
                    log_fidelity += loaded.len() as f64 * params.transfer_fidelity.ln();
                }
            }
        }
        // Shuttling to the next stage's positions.
        let dist = schedule.shuttle_distance_um(t);
        if dist > 0.0 {
            let dur = dist * params.shuttle_speed_us_per_um;
            time_us += dur;
            // Static qubits idle during the move.
            let movers = moved_count(schedule, t);
            idle_us += (n - movers as f64) * dur;
        }
    }

    // Final local-Clifford layer: one global RY pulse plus local RZ gates
    // (applied in parallel on the addressed qubits).
    let local_ops = boundary.hadamards + boundary.phase_gates;
    if boundary.hadamards > 0 {
        time_us += params.global_ry_duration_us;
        log_fidelity += n * params.global_ry_fidelity.ln();
    }
    if local_ops > 0 {
        time_us += params.local_rz_duration_us;
        idle_us += (n - local_ops.min(schedule.num_qubits) as f64) * params.local_rz_duration_us;
        log_fidelity += local_ops as f64 * params.local_rz_fidelity.ln();
    }

    let asp = (-(idle_us / params.t_eff_us)).exp() * log_fidelity.exp();
    ScheduleMetrics {
        num_rydberg: schedule.num_rydberg(),
        num_transfer: schedule.num_transfer(),
        exec_time_us: time_us,
        idle_time_us: idle_us,
        cz_count,
        exposed_idlers: exposed,
        transfer_ops,
        asp,
    }
}

fn moved_count(schedule: &Schedule, t: usize) -> usize {
    let Some(next) = schedule.stages.get(t + 1) else {
        return 0;
    };
    let cur = &schedule.stages[t];
    (0..schedule.num_qubits)
        .filter(|&q| cur.qubits[q].pos != next.qubits[q].pos)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ArchConfig, Layout};
    use crate::geometry::Position;
    use crate::schedule::{QubitState, Stage, TransferFlags, Trap};

    fn one_beam_schedule(layout: Layout, idler_y: i64) -> Schedule {
        let config = ArchConfig::paper(layout);
        let stage = Stage {
            kind: StageKind::Rydberg,
            qubits: vec![
                QubitState {
                    pos: Position::site_center(0, 3),
                    trap: Trap::Slm,
                },
                QubitState {
                    pos: Position {
                        x: 0,
                        y: 3,
                        h: 1,
                        v: 0,
                    },
                    trap: Trap::Aod { col: 0, row: 0 },
                },
                QubitState {
                    pos: Position::site_center(4, idler_y),
                    trap: Trap::Slm,
                },
            ],
        };
        Schedule {
            config,
            num_qubits: 3,
            stages: vec![stage],
        }
    }

    #[test]
    fn shielded_idler_avoids_rydberg_error() {
        let p = OpParams::default();
        let shielded = one_beam_schedule(Layout::BottomStorage, 0);
        let exposed = one_beam_schedule(Layout::NoShielding, 3);
        let m_s = evaluate(&shielded, &p, BoundaryOps::default());
        let m_e = evaluate(&exposed, &p, BoundaryOps::default());
        assert_eq!(m_s.exposed_idlers, 0);
        assert_eq!(m_e.exposed_idlers, 1);
        assert!(
            m_s.asp > m_e.asp,
            "shielding must improve ASP: {} vs {}",
            m_s.asp,
            m_e.asp
        );
        assert_eq!(m_s.cz_count, 1);
    }

    #[test]
    fn transfer_costs_time_and_fidelity() {
        let config = ArchConfig::paper(Layout::BottomStorage);
        let mut flags = TransferFlags::default();
        flags.col_store.insert(0);
        let s0 = Stage {
            kind: StageKind::Transfer(flags),
            qubits: vec![QubitState {
                pos: Position::site_center(0, 0),
                trap: Trap::Aod { col: 0, row: 0 },
            }],
        };
        let s1 = Stage {
            kind: StageKind::Rydberg,
            qubits: vec![QubitState {
                pos: Position::site_center(0, 0),
                trap: Trap::Slm,
            }],
        };
        let s = Schedule {
            config,
            num_qubits: 1,
            stages: vec![s0, s1],
        };
        let m = evaluate(&s, &OpParams::default(), BoundaryOps::default());
        assert_eq!(m.transfer_ops, 1);
        assert!(m.exec_time_us >= 200.0, "store takes 200 µs");
        assert!(m.asp < 1.0);
    }

    #[test]
    fn shuttle_time_scales_with_distance() {
        let config = ArchConfig::paper(Layout::NoShielding);
        let q = |x: i64| QubitState {
            pos: Position::site_center(x, 0),
            trap: Trap::Aod { col: 0, row: 0 },
        };
        let make = |x1: i64| Schedule {
            config: config.clone(),
            num_qubits: 1,
            stages: vec![
                Stage {
                    kind: StageKind::Rydberg,
                    qubits: vec![q(0)],
                },
                Stage {
                    kind: StageKind::Rydberg,
                    qubits: vec![q(x1)],
                },
            ],
        };
        let near = evaluate(&make(1), &OpParams::default(), BoundaryOps::default());
        let far = evaluate(&make(7), &OpParams::default(), BoundaryOps::default());
        assert!(far.exec_time_us > near.exec_time_us);
        let delta = far.exec_time_us - near.exec_time_us;
        // 6 extra sites × 14 µm × 0.55 µs/µm.
        assert!((delta - 6.0 * 14.0 * 0.55).abs() < 1e-6);
    }

    #[test]
    fn boundary_ops_contribute() {
        let s = one_beam_schedule(Layout::BottomStorage, 0);
        let p = OpParams::default();
        let bare = evaluate(&s, &p, BoundaryOps::default());
        let with_h = evaluate(
            &s,
            &p,
            BoundaryOps {
                hadamards: 2,
                phase_gates: 0,
            },
        );
        assert!(with_h.asp < bare.asp);
        assert!(with_h.exec_time_us > bare.exec_time_us);
    }

    #[test]
    fn asp_in_unit_interval() {
        let s = one_beam_schedule(Layout::NoShielding, 3);
        let m = evaluate(&s, &OpParams::default(), BoundaryOps::default());
        assert!(m.asp > 0.0 && m.asp <= 1.0);
    }
}
