//! The schedule data model: the sequence of stages a compiled
//! state-preparation program executes on the zoned architecture.
//!
//! Mirrors the paper's discrete-stage model (Sec. IV-A): each stage records
//! every qubit's trap position *at the start* of the stage. An execution
//! stage fires the global Rydberg beam and then shuttles; a transfer stage
//! first stores/loads qubits (AOD↔SLM) according to per-line flags and then
//! shuttles. Positions at the next stage's start are the post-shuttle
//! positions.

use std::collections::BTreeSet;

use crate::config::{ArchConfig, Zone};
use crate::geometry::Position;
use serde::{Deserialize, Serialize};

/// Trap holding a qubit: static SLM or an AOD crossing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Trap {
    /// Static SLM trap (site centers only).
    Slm,
    /// Adjustable AOD trap at the crossing of `col` and `row`.
    Aod {
        /// AOD column index, `0 ≤ col ≤ Cmax`.
        col: i64,
        /// AOD row index, `0 ≤ row ≤ Rmax`.
        row: i64,
    },
}

impl Trap {
    /// `true` for AOD traps.
    pub fn is_aod(&self) -> bool {
        matches!(self, Trap::Aod { .. })
    }
}

/// A qubit's full state at the start of a stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QubitState {
    /// Trap position.
    pub pos: Position,
    /// Trap type (and AOD line assignment).
    pub trap: Trap,
}

/// Store/load line flags of a transfer stage.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransferFlags {
    /// AOD columns whose qubits are stored (AOD → SLM).
    pub col_store: BTreeSet<i64>,
    /// AOD rows whose qubits are stored.
    pub row_store: BTreeSet<i64>,
    /// AOD columns whose qubits are loaded (SLM → AOD).
    pub col_load: BTreeSet<i64>,
    /// AOD rows whose qubits are loaded.
    pub row_load: BTreeSet<i64>,
}

impl TransferFlags {
    /// `true` if any store flag is set.
    pub fn any_store(&self) -> bool {
        !self.col_store.is_empty() || !self.row_store.is_empty()
    }

    /// `true` if any load flag is set.
    pub fn any_load(&self) -> bool {
        !self.col_load.is_empty() || !self.row_load.is_empty()
    }
}

/// The kind of a stage.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum StageKind {
    /// Execution stage: global Rydberg beam, then shuttling.
    Rydberg,
    /// Transfer stage: store/load per the flags, then shuttling.
    Transfer(TransferFlags),
}

/// One stage of a schedule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Stage {
    /// Stage kind.
    pub kind: StageKind,
    /// Per-qubit state at the start of this stage (indexed by qubit id).
    pub qubits: Vec<QubitState>,
}

impl Stage {
    /// `true` for execution (Rydberg) stages.
    pub fn is_rydberg(&self) -> bool {
        matches!(self.kind, StageKind::Rydberg)
    }
}

/// A complete schedule for one state-preparation circuit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// Architecture the schedule targets.
    pub config: ArchConfig,
    /// Number of qubits.
    pub num_qubits: usize,
    /// Stages in execution order.
    pub stages: Vec<Stage>,
}

impl Schedule {
    /// Number of execution (Rydberg) stages — the paper's `#R`.
    pub fn num_rydberg(&self) -> usize {
        self.stages.iter().filter(|s| s.is_rydberg()).count()
    }

    /// Number of transfer stages — the paper's `#T`.
    pub fn num_transfer(&self) -> usize {
        self.stages.len() - self.num_rydberg()
    }

    /// The CZ pairs a Rydberg beam at stage `t` executes: all near pairs
    /// with both qubits inside the entangling zone.
    ///
    /// Returns an empty list for transfer stages.
    pub fn executed_pairs(&self, t: usize) -> Vec<(usize, usize)> {
        let stage = &self.stages[t];
        if !stage.is_rydberg() {
            return Vec::new();
        }
        let mut out = Vec::new();
        for a in 0..self.num_qubits {
            for b in (a + 1)..self.num_qubits {
                let pa = stage.qubits[a].pos;
                let pb = stage.qubits[b].pos;
                if self.config.zone_of(pa.y) == Zone::Entangling
                    && self.config.zone_of(pb.y) == Zone::Entangling
                    && pa.near(&pb, &self.config)
                {
                    out.push((a, b));
                }
            }
        }
        out
    }

    /// The CZ layers of the schedule, one per Rydberg stage, in order.
    /// This is what gets replayed on the tableau simulator for
    /// verification.
    pub fn cz_layers(&self) -> Vec<Vec<(usize, usize)>> {
        (0..self.stages.len())
            .filter(|&t| self.stages[t].is_rydberg())
            .map(|t| self.executed_pairs(t))
            .collect()
    }

    /// Qubits transferred at transfer stage `t`: `(stored, loaded)` id
    /// lists, derived by comparing trap types with stage `t + 1`.
    ///
    /// Returns empty lists for execution stages or the last stage.
    pub fn transferred(&self, t: usize) -> (Vec<usize>, Vec<usize>) {
        if self.stages[t].is_rydberg() || t + 1 >= self.stages.len() {
            return (Vec::new(), Vec::new());
        }
        let cur = &self.stages[t].qubits;
        let next = &self.stages[t + 1].qubits;
        let stored = (0..self.num_qubits)
            .filter(|&q| cur[q].trap.is_aod() && !next[q].trap.is_aod())
            .collect();
        let loaded = (0..self.num_qubits)
            .filter(|&q| !cur[q].trap.is_aod() && next[q].trap.is_aod())
            .collect();
        (stored, loaded)
    }

    /// Maximum shuttle displacement (µm) between stages `t` and `t + 1`.
    pub fn shuttle_distance_um(&self, t: usize) -> f64 {
        if t + 1 >= self.stages.len() {
            return 0.0;
        }
        let cur = &self.stages[t].qubits;
        let next = &self.stages[t + 1].qubits;
        (0..self.num_qubits)
            .map(|q| cur[q].pos.distance_um(&next[q].pos, &self.config))
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Layout;

    fn slm(x: i64, y: i64) -> QubitState {
        QubitState {
            pos: Position::site_center(x, y),
            trap: Trap::Slm,
        }
    }

    fn aod(x: i64, y: i64, h: i64, v: i64, col: i64, row: i64) -> QubitState {
        QubitState {
            pos: Position { x, y, h, v },
            trap: Trap::Aod { col, row },
        }
    }

    #[test]
    fn executed_pairs_inside_zone_only() {
        let config = ArchConfig::paper(Layout::BottomStorage);
        // Pair at entangling site (0,3); a bystander pair in storage (0,0).
        let stage = Stage {
            kind: StageKind::Rydberg,
            qubits: vec![
                slm(0, 3),
                aod(0, 3, 1, 0, 0, 0),
                slm(0, 0),
                aod(0, 0, 1, 0, 1, 1),
            ],
        };
        let s = Schedule {
            config,
            num_qubits: 4,
            stages: vec![stage],
        };
        assert_eq!(s.executed_pairs(0), vec![(0, 1)]);
        assert_eq!(s.num_rydberg(), 1);
        assert_eq!(s.num_transfer(), 0);
    }

    #[test]
    fn transfer_stage_has_no_pairs() {
        let config = ArchConfig::paper(Layout::BottomStorage);
        let stage = Stage {
            kind: StageKind::Transfer(TransferFlags::default()),
            qubits: vec![slm(0, 3), aod(0, 3, 1, 0, 0, 0)],
        };
        let s = Schedule {
            config,
            num_qubits: 2,
            stages: vec![stage],
        };
        assert!(s.executed_pairs(0).is_empty());
    }

    #[test]
    fn transferred_detection() {
        let config = ArchConfig::paper(Layout::BottomStorage);
        let mut flags = TransferFlags::default();
        flags.col_store.insert(0);
        let t0 = Stage {
            kind: StageKind::Transfer(flags),
            qubits: vec![aod(0, 0, 0, 0, 0, 0), slm(1, 0)],
        };
        let t1 = Stage {
            kind: StageKind::Rydberg,
            qubits: vec![slm(0, 0), slm(1, 0)],
        };
        let s = Schedule {
            config,
            num_qubits: 2,
            stages: vec![t0, t1],
        };
        let (stored, loaded) = s.transferred(0);
        assert_eq!(stored, vec![0]);
        assert!(loaded.is_empty());
    }

    #[test]
    fn shuttle_distance() {
        let config = ArchConfig::paper(Layout::NoShielding);
        let t0 = Stage {
            kind: StageKind::Rydberg,
            qubits: vec![aod(0, 0, 0, 0, 0, 0)],
        };
        let t1 = Stage {
            kind: StageKind::Rydberg,
            qubits: vec![aod(2, 0, 0, 0, 0, 0)],
        };
        let s = Schedule {
            config,
            num_qubits: 1,
            stages: vec![t0, t1],
        };
        assert!((s.shuttle_distance_um(0) - 28.0).abs() < 1e-9);
        assert_eq!(s.shuttle_distance_um(1), 0.0);
    }

    #[test]
    fn serde_roundtrip() {
        let config = ArchConfig::paper(Layout::DoubleSidedStorage);
        let s = Schedule {
            config,
            num_qubits: 1,
            stages: vec![Stage {
                kind: StageKind::Transfer(TransferFlags::default()),
                qubits: vec![slm(0, 0)],
            }],
        };
        let text = serde_json::to_string(&s).expect("serialize");
        let back: Schedule = serde_json::from_str(&text).expect("deserialize");
        assert_eq!(back, s);
    }
}
