//! Positions on the zoned architecture: interaction sites with intra-site
//! offsets, and the proximity predicate that decides which qubits a Rydberg
//! beam entangles.

use crate::config::ArchConfig;
use serde::{Deserialize, Serialize};

/// A trap position: interaction-site coordinates plus intra-site offsets.
///
/// Matches the paper's per-qubit variables `(x, y, h, v)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Position {
    /// Interaction-site column, `0 ≤ x ≤ Xmax`.
    pub x: i64,
    /// Interaction-site row, `0 ≤ y ≤ Ymax`.
    pub y: i64,
    /// Horizontal offset within the site, `|h| ≤ Hmax`.
    pub h: i64,
    /// Vertical offset within the site, `|v| ≤ Vmax`.
    pub v: i64,
}

impl Position {
    /// Position at the center (SLM trap) of site `(x, y)`.
    pub fn site_center(x: i64, y: i64) -> Self {
        Position { x, y, h: 0, v: 0 }
    }

    /// `true` when at a site center (the only place an SLM trap exists).
    pub fn is_center(&self) -> bool {
        self.h == 0 && self.v == 0
    }

    /// `true` when within the architecture's bounds.
    pub fn in_bounds(&self, cfg: &ArchConfig) -> bool {
        (0..=cfg.x_max).contains(&self.x)
            && (0..=cfg.y_max).contains(&self.y)
            && self.h.abs() <= cfg.h_max
            && self.v.abs() <= cfg.v_max
    }

    /// The interaction site `(x, y)` this position belongs to.
    pub fn site(&self) -> (i64, i64) {
        (self.x, self.y)
    }

    /// Lexicographic key ordering physical x positions: `(x, h)`.
    pub fn x_key(&self) -> (i64, i64) {
        (self.x, self.h)
    }

    /// Lexicographic key ordering physical y positions: `(y, v)`.
    pub fn y_key(&self) -> (i64, i64) {
        (self.y, self.v)
    }

    /// Physical coordinates in µm.
    pub fn physical_um(&self, cfg: &ArchConfig) -> (f64, f64) {
        (
            cfg.physical_x_um(self.x, self.h),
            cfg.physical_y_um(self.y, self.v),
        )
    }

    /// Euclidean distance in µm to another position.
    pub fn distance_um(&self, other: &Position, cfg: &ArchConfig) -> f64 {
        let (x1, y1) = self.physical_um(cfg);
        let (x2, y2) = other.physical_um(cfg);
        ((x1 - x2).powi(2) + (y1 - y2).powi(2)).sqrt()
    }

    /// The paper's proximity predicate (Eq. 12): same interaction site and
    /// both offset deltas strictly below the interaction radius. Qubits in
    /// different sites never interact (sites are 14 µm apart).
    pub fn near(&self, other: &Position, cfg: &ArchConfig) -> bool {
        self.site() == other.site()
            && (self.h - other.h).abs() < cfg.radius
            && (self.v - other.v).abs() < cfg.radius
    }
}

impl std::fmt::Display for Position {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({},{})+({},{})", self.x, self.y, self.h, self.v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Layout;

    fn cfg() -> ArchConfig {
        ArchConfig::paper(Layout::BottomStorage)
    }

    #[test]
    fn bounds_checking() {
        let c = cfg();
        assert!(Position::site_center(0, 0).in_bounds(&c));
        assert!(Position::site_center(7, 6).in_bounds(&c));
        assert!(!Position::site_center(8, 0).in_bounds(&c));
        assert!(!Position {
            x: 0,
            y: 0,
            h: 3,
            v: 0
        }
        .in_bounds(&c));
        assert!(Position {
            x: 0,
            y: 0,
            h: -2,
            v: 2
        }
        .in_bounds(&c));
    }

    #[test]
    fn proximity_within_site() {
        let c = cfg();
        let a = Position {
            x: 1,
            y: 2,
            h: 0,
            v: 0,
        };
        let b = Position {
            x: 1,
            y: 2,
            h: 1,
            v: 0,
        };
        let far = Position {
            x: 1,
            y: 2,
            h: 2,
            v: 0,
        };
        assert!(a.near(&b, &c));
        assert!(b.near(&a, &c));
        assert!(!a.near(&far, &c), "|Δh| = 2 is not < r = 2");
        assert!(b.near(&far, &c));
    }

    #[test]
    fn different_sites_never_near() {
        let c = cfg();
        let a = Position {
            x: 1,
            y: 2,
            h: 2,
            v: 0,
        };
        let b = Position {
            x: 2,
            y: 2,
            h: -2,
            v: 0,
        };
        assert!(!a.near(&b, &c));
    }

    #[test]
    fn diagonal_proximity() {
        let c = cfg();
        let a = Position {
            x: 3,
            y: 3,
            h: 0,
            v: 0,
        };
        let b = Position {
            x: 3,
            y: 3,
            h: 1,
            v: 1,
        };
        assert!(a.near(&b, &c), "diagonal neighbours within radius interact");
    }

    #[test]
    fn physical_distance() {
        let c = cfg();
        let a = Position::site_center(0, 3);
        let b = Position::site_center(1, 3);
        assert!((a.distance_um(&b, &c) - 14.0).abs() < 1e-9);
        let off = Position {
            x: 0,
            y: 3,
            h: 1,
            v: 0,
        };
        assert!((a.distance_um(&off, &c) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ordering_keys() {
        let a = Position {
            x: 1,
            y: 0,
            h: -2,
            v: 0,
        };
        let b = Position {
            x: 1,
            y: 0,
            h: 1,
            v: 0,
        };
        let c = Position {
            x: 2,
            y: 0,
            h: -2,
            v: 0,
        };
        assert!(a.x_key() < b.x_key());
        assert!(b.x_key() < c.x_key());
    }
}
