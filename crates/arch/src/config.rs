//! Architecture configuration: grid extents, AOD resources, interaction
//! radius and zone layout.
//!
//! Mirrors the paper's symbolic constants: `Xmax`, `Ymax`, `Hmax`, `Vmax`,
//! `Cmax`, `Rmax`, the interaction radius `r`, and the entangling-zone
//! bounds `Emin ≤ y ≤ Emax`. The three evaluated layouts (Sec. V-A) are
//! provided as constructors.

use serde::{Deserialize, Serialize};

/// The three architecture layouts evaluated in the paper, plus a custom
/// variant for design-space exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Layout {
    /// Layout 1: a single entangling zone, no storage — idling qubits
    /// cannot be shielded (the baseline).
    NoShielding,
    /// Layout 2: one storage zone (two rows) below the entangling zone.
    BottomStorage,
    /// Layout 3: storage zones (two rows each) on both sides of the
    /// entangling zone.
    DoubleSidedStorage,
    /// Custom entangling-zone bounds for exploration.
    Custom {
        /// Lowest entangling row.
        e_min: i64,
        /// Highest entangling row.
        e_max: i64,
    },
}

impl std::fmt::Display for Layout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Layout::NoShielding => write!(f, "(1) No Shielding"),
            Layout::BottomStorage => write!(f, "(2) Bottom Storage"),
            Layout::DoubleSidedStorage => write!(f, "(3) Double-Sided Storage"),
            Layout::Custom { e_min, e_max } => write!(f, "Custom [{e_min}, {e_max}]"),
        }
    }
}

/// Which zone an interaction-site row belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Zone {
    /// Rows swept by the global Rydberg beam.
    Entangling,
    /// Rows shielded from the beam.
    Storage,
}

/// Complete architecture description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchConfig {
    /// Maximum x coordinate of an interaction site (`Xmax`).
    pub x_max: i64,
    /// Maximum y coordinate of an interaction site (`Ymax`).
    pub y_max: i64,
    /// Maximum |horizontal offset| within a site (`Hmax`).
    pub h_max: i64,
    /// Maximum |vertical offset| within a site (`Vmax`).
    pub v_max: i64,
    /// Maximum AOD column index (`Cmax`; `Cmax + 1` columns exist).
    pub c_max: i64,
    /// Maximum AOD row index (`Rmax`).
    pub r_max: i64,
    /// Interaction radius `r`: qubits interact iff they share a site and
    /// `|Δh| < r ∧ |Δv| < r`.
    pub radius: i64,
    /// Lowest entangling-zone row (`Emin`).
    pub e_min: i64,
    /// Highest entangling-zone row (`Emax`).
    pub e_max: i64,
    /// The layout this configuration was derived from.
    pub layout: Layout,
    /// Distance between neighbouring trap sites inside a site (µm).
    pub offset_pitch_um: f64,
    /// Distance between interaction-site centers (µm).
    pub site_pitch_um: f64,
    /// Minimum separation between qubits in different zones (µm).
    pub zone_gap_um: f64,
}

impl ArchConfig {
    /// The paper's evaluation architecture (Sec. V-A) for a given layout:
    /// 8 columns, 7 rows, offsets ≤ 2, six AOD lines per direction, r = 2,
    /// 1 µm offset pitch, 14 µm site pitch, 20 µm zone separation.
    pub fn paper(layout: Layout) -> Self {
        let (e_min, e_max) = match layout {
            Layout::NoShielding => (0, 6),
            Layout::BottomStorage => (2, 6),
            Layout::DoubleSidedStorage => (2, 4),
            Layout::Custom { e_min, e_max } => (e_min, e_max),
        };
        ArchConfig {
            x_max: 7,
            y_max: 6,
            h_max: 2,
            v_max: 2,
            c_max: 5,
            r_max: 5,
            radius: 2,
            e_min,
            e_max,
            layout,
            offset_pitch_um: 1.0,
            site_pitch_um: 14.0,
            zone_gap_um: 20.0,
        }
    }

    /// Zone of interaction-site row `y`.
    pub fn zone_of(&self, y: i64) -> Zone {
        if y >= self.e_min && y <= self.e_max {
            Zone::Entangling
        } else {
            Zone::Storage
        }
    }

    /// `true` when the layout has at least one storage row.
    pub fn has_storage(&self) -> bool {
        self.e_min > 0 || self.e_max < self.y_max
    }

    /// Rows belonging to the storage zone(s), ascending.
    pub fn storage_rows(&self) -> Vec<i64> {
        (0..=self.y_max)
            .filter(|&y| self.zone_of(y) == Zone::Storage)
            .collect()
    }

    /// Rows belonging to the entangling zone, ascending.
    pub fn entangling_rows(&self) -> Vec<i64> {
        (self.e_min..=self.e_max).collect()
    }

    /// Number of interaction sites.
    pub fn num_sites(&self) -> i64 {
        (self.x_max + 1) * (self.y_max + 1)
    }

    /// Physical x position (µm) of site column `x` with offset `h`.
    pub fn physical_x_um(&self, x: i64, h: i64) -> f64 {
        x as f64 * self.site_pitch_um + h as f64 * self.offset_pitch_um
    }

    /// Physical y position (µm) of site row `y` with offset `v`, including
    /// the extra spacing inserted at every zone boundary so that qubits in
    /// different zones are at least `zone_gap_um` apart.
    pub fn physical_y_um(&self, y: i64, v: i64) -> f64 {
        let extra_per_boundary = (self.zone_gap_um - self.site_pitch_um).max(0.0);
        let boundaries_below = (1..=y)
            .filter(|&row| self.zone_of(row) != self.zone_of(row - 1))
            .count();
        y as f64 * self.site_pitch_um
            + boundaries_below as f64 * extra_per_boundary
            + v as f64 * self.offset_pitch_um
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        if self.x_max < 0 || self.y_max < 0 {
            return Err("grid extents must be non-negative".into());
        }
        if self.e_min < 0 || self.e_max > self.y_max || self.e_min > self.e_max {
            return Err(format!(
                "entangling zone [{}, {}] outside grid rows [0, {}]",
                self.e_min, self.e_max, self.y_max
            ));
        }
        if self.radius < 1 {
            return Err("interaction radius must be at least 1".into());
        }
        if self.h_max < 0 || self.v_max < 0 || self.c_max < 0 || self.r_max < 0 {
            return Err("offsets and AOD line counts must be non-negative".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_layouts_match_section_5a() {
        let l1 = ArchConfig::paper(Layout::NoShielding);
        assert_eq!((l1.e_min, l1.e_max), (0, 6));
        assert!(!l1.has_storage());
        let l2 = ArchConfig::paper(Layout::BottomStorage);
        assert_eq!((l2.e_min, l2.e_max), (2, 6));
        assert_eq!(l2.storage_rows(), vec![0, 1]);
        let l3 = ArchConfig::paper(Layout::DoubleSidedStorage);
        assert_eq!((l3.e_min, l3.e_max), (2, 4));
        assert_eq!(l3.storage_rows(), vec![0, 1, 5, 6]);
        for l in [l1, l2, l3] {
            assert_eq!((l.x_max, l.y_max), (7, 6));
            assert_eq!((l.c_max, l.r_max), (5, 5));
            assert_eq!((l.h_max, l.v_max), (2, 2));
            assert_eq!(l.radius, 2);
            l.validate().expect("paper config valid");
        }
    }

    #[test]
    fn zone_classification() {
        let c = ArchConfig::paper(Layout::DoubleSidedStorage);
        assert_eq!(c.zone_of(0), Zone::Storage);
        assert_eq!(c.zone_of(2), Zone::Entangling);
        assert_eq!(c.zone_of(4), Zone::Entangling);
        assert_eq!(c.zone_of(5), Zone::Storage);
    }

    #[test]
    fn physical_coordinates_respect_zone_gap() {
        let c = ArchConfig::paper(Layout::BottomStorage);
        // Rows 1 (storage) and 2 (entangling) must be ≥ 20 µm apart.
        let gap = c.physical_y_um(2, 0) - c.physical_y_um(1, 0);
        assert!(gap >= 20.0 - 1e-9, "zone gap {gap} < 20 µm");
        // Rows within a zone keep the 14 µm pitch.
        let pitch = c.physical_y_um(4, 0) - c.physical_y_um(3, 0);
        assert!((pitch - 14.0).abs() < 1e-9);
        // Offsets move by 1 µm.
        assert!((c.physical_x_um(1, 1) - c.physical_x_um(1, 0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn double_sided_has_two_gaps() {
        let c = ArchConfig::paper(Layout::DoubleSidedStorage);
        let lower = c.physical_y_um(2, 0) - c.physical_y_um(1, 0);
        let upper = c.physical_y_um(5, 0) - c.physical_y_um(4, 0);
        assert!(lower >= 20.0 - 1e-9);
        assert!(upper >= 20.0 - 1e-9);
    }

    #[test]
    fn custom_layout_validation() {
        let mut c = ArchConfig::paper(Layout::Custom { e_min: 3, e_max: 3 });
        c.validate().expect("single-row entangling zone is fine");
        c.e_min = 9;
        assert!(c.validate().is_err());
    }

    #[test]
    fn display_names() {
        assert_eq!(Layout::NoShielding.to_string(), "(1) No Shielding");
        assert_eq!(
            Layout::DoubleSidedStorage.to_string(),
            "(3) Double-Sided Storage"
        );
    }
}
