//! Operational schedule validator — the independent re-check of every
//! constraint family C1–C6 of the paper, executed on concrete schedules
//! rather than symbolic variables.
//!
//! The SMT encoding and this validator are written against the same prose
//! spec but share no code, so agreement between them is meaningful
//! evidence of correctness (and the test suite injects faults to prove the
//! validator actually rejects bad schedules).

use std::collections::HashSet;

use crate::config::Zone;
use crate::schedule::{Schedule, StageKind, Trap};

/// A single constraint violation, labelled by the paper's constraint family.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// C1 / V1: position out of bounds, SLM off-center, or two qubits in
    /// one trap.
    Positioning(String),
    /// C2: AOD line indices out of range or ordering broken.
    AodOrdering(String),
    /// C3: gate-execution or shielding rules broken.
    Gates(String),
    /// C4: illegal change across an execution stage.
    ExecutionTransition(String),
    /// C5/C6: transfer-stage rules broken (store/load flags, positions,
    /// order preservation).
    Transfer(String),
    /// Global: executed CZ multiset differs from the target gate list.
    GateCoverage(String),
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::Positioning(m) => write!(f, "positioning (C1): {m}"),
            Violation::AodOrdering(m) => write!(f, "aod ordering (C2): {m}"),
            Violation::Gates(m) => write!(f, "gate execution (C3): {m}"),
            Violation::ExecutionTransition(m) => {
                write!(f, "execution transition (C4): {m}")
            }
            Violation::Transfer(m) => write!(f, "transfer (C5/C6): {m}"),
            Violation::GateCoverage(m) => write!(f, "gate coverage: {m}"),
        }
    }
}

/// Validates a schedule against the architecture rules and a target CZ
/// list. Returns all violations found (empty ⇒ valid).
pub fn validate(schedule: &Schedule, target_gates: &[(usize, usize)]) -> Vec<Violation> {
    let mut out = Vec::new();
    let cfg = &schedule.config;
    let n = schedule.num_qubits;

    for (t, stage) in schedule.stages.iter().enumerate() {
        if stage.qubits.len() != n {
            out.push(Violation::Positioning(format!(
                "stage {t} has {} qubit states, expected {n}",
                stage.qubits.len()
            )));
            continue;
        }
        // --- C1 / V1: bounds, SLM at centers, distinct positions.
        let mut seen = HashSet::new();
        for (q, qs) in stage.qubits.iter().enumerate() {
            if !qs.pos.in_bounds(cfg) {
                out.push(Violation::Positioning(format!(
                    "stage {t}: qubit {q} at {} is out of bounds",
                    qs.pos
                )));
            }
            if !qs.trap.is_aod() && !qs.pos.is_center() {
                out.push(Violation::Positioning(format!(
                    "stage {t}: SLM qubit {q} off-center at {}",
                    qs.pos
                )));
            }
            if !seen.insert(qs.pos) {
                out.push(Violation::Positioning(format!(
                    "stage {t}: two qubits share trap {}",
                    qs.pos
                )));
            }
        }
        // --- C2 / V1: AOD indices in range; line order consistent.
        for (q, qs) in stage.qubits.iter().enumerate() {
            if let Trap::Aod { col, row } = qs.trap {
                if !(0..=cfg.c_max).contains(&col) || !(0..=cfg.r_max).contains(&row) {
                    out.push(Violation::AodOrdering(format!(
                        "stage {t}: qubit {q} on AOD line ({col}, {row}) out of range"
                    )));
                }
            }
        }
        for a in 0..n {
            for b in (a + 1)..n {
                let (Trap::Aod { col: ca, row: ra }, Trap::Aod { col: cb, row: rb }) =
                    (stage.qubits[a].trap, stage.qubits[b].trap)
                else {
                    continue;
                };
                let (pa, pb) = (stage.qubits[a].pos, stage.qubits[b].pos);
                if (ca < cb) != (pa.x_key() < pb.x_key())
                    || (ca == cb) != (pa.x_key() == pb.x_key())
                {
                    out.push(Violation::AodOrdering(format!(
                        "stage {t}: columns of qubits {a} ({ca} at {pa}) and {b} ({cb} at {pb}) break x-order"
                    )));
                }
                if (ra < rb) != (pa.y_key() < pb.y_key())
                    || (ra == rb) != (pa.y_key() == pb.y_key())
                {
                    out.push(Violation::AodOrdering(format!(
                        "stage {t}: rows of qubits {a} ({ra}) and {b} ({rb}) break y-order"
                    )));
                }
            }
        }
        // --- C3: beams.
        if stage.is_rydberg() {
            let pairs = schedule.executed_pairs(t);
            let mut gated: HashSet<usize> = HashSet::new();
            for &(a, b) in &pairs {
                if !gated.insert(a) || !gated.insert(b) {
                    out.push(Violation::Gates(format!(
                        "stage {t}: qubit in two simultaneous CZ pairs ({a},{b} overlaps)"
                    )));
                }
                let is_target = target_gates
                    .iter()
                    .any(|&(x, y)| (x, y) == (a, b) || (y, x) == (a, b));
                if !is_target {
                    out.push(Violation::Gates(format!(
                        "stage {t}: spurious CZ between {a} and {b} (not a target gate)"
                    )));
                }
            }
            for (q, qs) in stage.qubits.iter().enumerate() {
                let in_zone = cfg.zone_of(qs.pos.y) == Zone::Entangling;
                if gated.contains(&q) {
                    continue;
                }
                if cfg.has_storage() {
                    // Eq. 14: idlers must be shielded.
                    if in_zone {
                        out.push(Violation::Gates(format!(
                            "stage {t}: idle qubit {q} exposed in the entangling zone"
                        )));
                    }
                } else {
                    // Footnote 2 replacement: idlers sit in sites not shared
                    // with any other qubit.
                    let shares_site = stage
                        .qubits
                        .iter()
                        .enumerate()
                        .any(|(p, ps)| p != q && ps.pos.site() == qs.pos.site());
                    if shares_site {
                        out.push(Violation::Gates(format!(
                            "stage {t}: idle qubit {q} shares an interaction site"
                        )));
                    }
                }
            }
        }
        // --- Transitions to the next stage.
        let Some(next) = schedule.stages.get(t + 1) else {
            continue;
        };
        if next.qubits.len() != n {
            continue; // already reported when visiting t + 1
        }
        match &stage.kind {
            StageKind::Rydberg => {
                // C4: trap type and line indices invariant; SLM static.
                for q in 0..n {
                    let (cur, nxt) = (stage.qubits[q], next.qubits[q]);
                    if cur.trap.is_aod() != nxt.trap.is_aod() {
                        out.push(Violation::ExecutionTransition(format!(
                            "stage {t}: qubit {q} changed trap type without a transfer stage"
                        )));
                    }
                    match (cur.trap, nxt.trap) {
                        (Trap::Slm, Trap::Slm) if cur.pos != nxt.pos => {
                            out.push(Violation::ExecutionTransition(format!(
                                "stage {t}: SLM qubit {q} moved from {} to {}",
                                cur.pos, nxt.pos
                            )));
                        }
                        (Trap::Aod { col: c0, row: r0 }, Trap::Aod { col: c1, row: r1 })
                            if (c0, r0) != (c1, r1) =>
                        {
                            out.push(Violation::ExecutionTransition(format!(
                                "stage {t}: qubit {q} changed AOD lines during shuttling"
                            )));
                        }
                        _ => {}
                    }
                }
            }
            StageKind::Transfer(flags) => {
                for q in 0..n {
                    let (cur, nxt) = (stage.qubits[q], next.qubits[q]);
                    match (cur.trap, nxt.trap) {
                        // Stored: AOD → SLM.
                        (Trap::Aod { col, row }, Trap::Slm) => {
                            if !cur.pos.is_center() {
                                out.push(Violation::Transfer(format!(
                                    "stage {t}: qubit {q} stored away from a site center ({})",
                                    cur.pos
                                )));
                            }
                            if cur.pos != nxt.pos {
                                out.push(Violation::Transfer(format!(
                                    "stage {t}: stored qubit {q} moved during the transfer stage"
                                )));
                            }
                            if !flags.col_store.contains(&col) && !flags.row_store.contains(&row) {
                                out.push(Violation::Transfer(format!(
                                    "stage {t}: qubit {q} stored without a store flag on its lines"
                                )));
                            }
                        }
                        // Remained in AOD: no store flag may cover it.
                        (Trap::Aod { col, row }, Trap::Aod { .. }) => {
                            if flags.col_store.contains(&col) || flags.row_store.contains(&row) {
                                out.push(Violation::Transfer(format!(
                                    "stage {t}: qubit {q} sits on a store-flagged line but stayed in AOD"
                                )));
                            }
                        }
                        // Loaded: SLM → AOD (flags checked on the new lines).
                        (Trap::Slm, Trap::Aod { col, row }) => {
                            if !flags.col_load.contains(&col) && !flags.row_load.contains(&row) {
                                out.push(Violation::Transfer(format!(
                                    "stage {t}: qubit {q} loaded without a load flag on its lines"
                                )));
                            }
                        }
                        // Remained in SLM: static, and not on a load-flagged line.
                        (Trap::Slm, Trap::Slm) => {
                            if cur.pos != nxt.pos {
                                out.push(Violation::Transfer(format!(
                                    "stage {t}: SLM qubit {q} moved during a transfer stage"
                                )));
                            }
                        }
                    }
                    // Note: a qubit that stays in AOD may share a line index
                    // with a load-flagged line — loading only affects SLM
                    // atoms, matching the paper's Eq. 20 analog, which binds
                    // only qubits with `¬a_t`.
                }
                // C6 (Eq. 21 + vertical analog): relative order of AOD
                // qubits at t+1 must match their physical order at t.
                for a in 0..n {
                    for b in (a + 1)..n {
                        let (Trap::Aod { col: ca, row: ra }, Trap::Aod { col: cb, row: rb }) =
                            (next.qubits[a].trap, next.qubits[b].trap)
                        else {
                            continue;
                        };
                        let (pa, pb) = (stage.qubits[a].pos, stage.qubits[b].pos);
                        if (ca < cb) != (pa.x_key() < pb.x_key())
                            || (ca == cb) != (pa.x_key() == pb.x_key())
                        {
                            out.push(Violation::Transfer(format!(
                                "stage {t}: loading broke the horizontal order of qubits {a} and {b}"
                            )));
                        }
                        if (ra < rb) != (pa.y_key() < pb.y_key())
                            || (ra == rb) != (pa.y_key() == pb.y_key())
                        {
                            out.push(Violation::Transfer(format!(
                                "stage {t}: loading broke the vertical order of qubits {a} and {b}"
                            )));
                        }
                    }
                }
            }
        }
    }

    // --- Global gate coverage: every target gate exactly once.
    let mut remaining: Vec<(usize, usize)> = target_gates
        .iter()
        .map(|&(a, b)| if a < b { (a, b) } else { (b, a) })
        .collect();
    for t in 0..schedule.stages.len() {
        for pair in schedule.executed_pairs(t) {
            if let Some(i) = remaining.iter().position(|&g| g == pair) {
                remaining.swap_remove(i);
            } else {
                out.push(Violation::GateCoverage(format!(
                    "CZ {pair:?} executed at stage {t} but not (or no longer) required"
                )));
            }
        }
    }
    for g in remaining {
        out.push(Violation::GateCoverage(format!("CZ {g:?} never executed")));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ArchConfig, Layout};
    use crate::geometry::Position;
    use crate::schedule::{QubitState, Stage, TransferFlags};

    fn slm(x: i64, y: i64) -> QubitState {
        QubitState {
            pos: Position::site_center(x, y),
            trap: Trap::Slm,
        }
    }

    fn aod(x: i64, y: i64, h: i64, v: i64, col: i64, row: i64) -> QubitState {
        QubitState {
            pos: Position { x, y, h, v },
            trap: Trap::Aod { col, row },
        }
    }

    /// One beam executing a single CZ on a bottom-storage layout, with a
    /// third qubit shielded in storage.
    fn tiny_valid() -> (Schedule, Vec<(usize, usize)>) {
        let config = ArchConfig::paper(Layout::BottomStorage);
        let stage = Stage {
            kind: StageKind::Rydberg,
            qubits: vec![slm(0, 3), aod(0, 3, 1, 0, 0, 0), slm(2, 0)],
        };
        (
            Schedule {
                config,
                num_qubits: 3,
                stages: vec![stage],
            },
            vec![(0, 1)],
        )
    }

    #[test]
    fn valid_schedule_passes() {
        let (s, gates) = tiny_valid();
        assert_eq!(validate(&s, &gates), Vec::new());
    }

    #[test]
    fn exposed_idler_rejected() {
        let (mut s, gates) = tiny_valid();
        // Move the idler into the entangling zone.
        s.stages[0].qubits[2] = slm(2, 4);
        let v = validate(&s, &gates);
        assert!(
            v.iter().any(|e| matches!(e, Violation::Gates(_))),
            "expected a shielding violation, got {v:?}"
        );
    }

    #[test]
    fn spurious_gate_rejected() {
        let (s, _) = tiny_valid();
        // Declare no target gates: the executed pair becomes spurious.
        let v = validate(&s, &[]);
        assert!(v
            .iter()
            .any(|e| matches!(e, Violation::Gates(m) if m.contains("spurious"))));
    }

    #[test]
    fn missing_gate_rejected() {
        let (s, mut gates) = tiny_valid();
        gates.push((0, 2));
        let v = validate(&s, &gates);
        assert!(v
            .iter()
            .any(|e| matches!(e, Violation::GateCoverage(m) if m.contains("never executed"))));
    }

    #[test]
    fn slm_off_center_rejected() {
        let (mut s, gates) = tiny_valid();
        s.stages[0].qubits[2] = QubitState {
            pos: Position {
                x: 2,
                y: 0,
                h: 1,
                v: 0,
            },
            trap: Trap::Slm,
        };
        let v = validate(&s, &gates);
        assert!(v.iter().any(|e| matches!(e, Violation::Positioning(_))));
    }

    #[test]
    fn shared_trap_rejected() {
        let (mut s, gates) = tiny_valid();
        s.stages[0].qubits[2] = s.stages[0].qubits[0];
        let v = validate(&s, &gates);
        assert!(v
            .iter()
            .any(|e| matches!(e, Violation::Positioning(m) if m.contains("share"))));
    }

    #[test]
    fn aod_order_violation_rejected() {
        let config = ArchConfig::paper(Layout::BottomStorage);
        // Column order contradicts x positions.
        let stage = Stage {
            kind: StageKind::Transfer(TransferFlags::default()),
            qubits: vec![aod(0, 0, 0, 0, 1, 0), aod(1, 0, 0, 0, 0, 0)],
        };
        let s = Schedule {
            config,
            num_qubits: 2,
            stages: vec![stage],
        };
        let v = validate(&s, &[]);
        assert!(v.iter().any(|e| matches!(e, Violation::AodOrdering(_))));
    }

    #[test]
    fn trap_change_without_transfer_rejected() {
        let config = ArchConfig::paper(Layout::BottomStorage);
        let s0 = Stage {
            kind: StageKind::Rydberg,
            qubits: vec![slm(0, 3), aod(0, 3, 1, 0, 0, 0)],
        };
        let mut q1 = vec![slm(0, 3), slm(1, 3)];
        q1[1].trap = Trap::Slm;
        let s1 = Stage {
            kind: StageKind::Rydberg,
            qubits: q1,
        };
        let s = Schedule {
            config,
            num_qubits: 2,
            stages: vec![s0, s1],
        };
        let v = validate(&s, &[(0, 1)]);
        assert!(v
            .iter()
            .any(|e| matches!(e, Violation::ExecutionTransition(m) if m.contains("trap type"))));
    }

    #[test]
    fn store_without_flag_rejected() {
        let config = ArchConfig::paper(Layout::BottomStorage);
        let s0 = Stage {
            kind: StageKind::Transfer(TransferFlags::default()),
            qubits: vec![aod(0, 0, 0, 0, 0, 0)],
        };
        let s1 = Stage {
            kind: StageKind::Transfer(TransferFlags::default()),
            qubits: vec![slm(0, 0)],
        };
        let s = Schedule {
            config,
            num_qubits: 1,
            stages: vec![s0, s1],
        };
        let v = validate(&s, &[]);
        assert!(v
            .iter()
            .any(|e| matches!(e, Violation::Transfer(m) if m.contains("store flag"))));
    }

    #[test]
    fn store_off_center_rejected() {
        let config = ArchConfig::paper(Layout::BottomStorage);
        let mut flags = TransferFlags::default();
        flags.col_store.insert(0);
        let s0 = Stage {
            kind: StageKind::Transfer(flags),
            qubits: vec![aod(0, 0, 1, 0, 0, 0)],
        };
        let s1 = Stage {
            kind: StageKind::Transfer(TransferFlags::default()),
            qubits: vec![QubitState {
                pos: Position {
                    x: 0,
                    y: 0,
                    h: 1,
                    v: 0,
                },
                trap: Trap::Slm,
            }],
        };
        let s = Schedule {
            config,
            num_qubits: 1,
            stages: vec![s0, s1],
        };
        let v = validate(&s, &[]);
        assert!(v
            .iter()
            .any(|e| matches!(e, Violation::Transfer(m) if m.contains("site center"))));
    }

    #[test]
    fn load_order_violation_rejected() {
        let config = ArchConfig::paper(Layout::BottomStorage);
        let mut flags = TransferFlags::default();
        flags.col_load.extend([0, 1]);
        // Two SLM qubits at x = 0 and x = 2; loaded with columns crossed.
        let s0 = Stage {
            kind: StageKind::Transfer(flags),
            qubits: vec![slm(0, 0), slm(2, 0)],
        };
        let s1 = Stage {
            kind: StageKind::Rydberg,
            qubits: vec![aod(3, 3, 0, 0, 1, 0), aod(2, 3, 1, 0, 0, 0)],
        };
        let s = Schedule {
            config,
            num_qubits: 2,
            stages: vec![s0, s1],
        };
        let v = validate(&s, &[(0, 1)]);
        assert!(
            v.iter()
                .any(|e| matches!(e, Violation::Transfer(m) if m.contains("horizontal order"))),
            "got {v:?}"
        );
    }
}
