//! # nasp-arch — zoned neutral atom architecture model
//!
//! The hardware substrate of the NASP reproduction (DATE 2025, Stade et
//! al.): everything the scheduler needs to know about the machine, plus an
//! independent operational validator and the paper's fidelity model.
//!
//! * [`ArchConfig`] / [`Layout`] — grid extents, AOD resources, interaction
//!   radius and the three evaluated zone layouts (no shielding / bottom
//!   storage / double-sided storage),
//! * [`Position`] — interaction sites with intra-site offsets and the
//!   proximity predicate deciding which pairs a Rydberg beam entangles,
//! * [`Schedule`] — the discrete-stage execution model (Rydberg stages and
//!   transfer stages with per-line store/load flags),
//! * [`validate`](validate::validate) — re-checks constraint families C1–C6
//!   on concrete schedules, independently of the SMT encoding,
//! * [`metrics::evaluate`] — execution time and Approximated
//!   Success Probability (ASP) under the paper's figures of merit.
//!
//! ## Example
//!
//! ```
//! use nasp_arch::{ArchConfig, Layout, Position};
//!
//! let cfg = ArchConfig::paper(Layout::DoubleSidedStorage);
//! assert_eq!(cfg.storage_rows(), vec![0, 1, 5, 6]);
//! let a = Position { x: 1, y: 3, h: 0, v: 0 };
//! let b = Position { x: 1, y: 3, h: 1, v: 0 };
//! assert!(a.near(&b, &cfg)); // this pair would undergo a CZ
//! ```

#![warn(missing_docs)]

mod config;
mod geometry;
pub mod metrics;
mod render;
mod schedule;
pub mod validate;

pub use config::{ArchConfig, Layout, Zone};
pub use geometry::Position;
pub use metrics::{evaluate, BoundaryOps, OpParams, ScheduleMetrics};
pub use render::render_schedule;
pub use schedule::{QubitState, Schedule, Stage, StageKind, TransferFlags, Trap};
pub use validate::{validate as validate_schedule, Violation};
