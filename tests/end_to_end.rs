//! Cross-crate integration tests: the full pipeline
//! code → STABGRAPH circuit → SMT/heuristic schedule → operational
//! validation → stabilizer-simulator verification → metrics.

use std::time::Duration;

use nasp::arch::{evaluate, validate_schedule, ArchConfig, BoundaryOps, Layout, OpParams};
use nasp::core::{solve, Problem, Provenance, SolveOptions};
use nasp::qec::{catalog, graph_state};
use nasp::sim::{check_state, run_layers};

fn pipeline(code_name: &str, layout: Layout, budget: Duration) -> (Provenance, f64, usize, usize) {
    let code = catalog::by_name(code_name).expect("catalog code");
    let targets = code.zero_state_stabilizers();
    let circuit = graph_state::synthesize(&targets).expect("synthesizable");
    let problem = Problem::new(ArchConfig::paper(layout), &circuit);
    let options = SolveOptions::builder().time_budget(budget).build();
    let report = solve(&problem, &options);
    let schedule = report.schedule.expect("schedule produced");
    // Independent re-checks.
    let violations = validate_schedule(&schedule, &problem.gates);
    assert!(
        violations.is_empty(),
        "{code_name}/{layout:?}: {violations:?}"
    );
    let state = run_layers(&circuit, &schedule.cz_layers());
    assert!(
        check_state(&state, &targets).holds_up_to_pauli_frame(),
        "{code_name}/{layout:?}: schedule does not prepare the code state"
    );
    let metrics = evaluate(
        &schedule,
        &OpParams::default(),
        BoundaryOps {
            hadamards: circuit.hadamards.len(),
            phase_gates: circuit.phase_gates.len(),
        },
    );
    (
        report.provenance,
        metrics.asp,
        schedule.num_rydberg(),
        schedule.num_transfer(),
    )
}

#[test]
fn steane_matches_paper_structure() {
    // Paper Table I, Steane row: #R = 3 in all layouts; #T = 0 / 2 / 1.
    let (p1, asp1, r1, t1) = pipeline("steane", Layout::NoShielding, Duration::from_secs(60));
    assert_eq!(p1, Provenance::Optimal);
    assert_eq!((r1, t1), (3, 0));
    let (p2, asp2, r2, t2) = pipeline("steane", Layout::BottomStorage, Duration::from_secs(60));
    assert_eq!(p2, Provenance::Optimal);
    assert_eq!((r2, t2), (3, 2));
    let (p3, asp3, r3, t3) = pipeline(
        "steane",
        Layout::DoubleSidedStorage,
        Duration::from_secs(60),
    );
    assert_eq!(p3, Provenance::Optimal);
    assert_eq!((r3, t3), (3, 1));
    // ASP shape: double-sided ≥ the other two within a small tolerance; all
    // three close for this small code (paper: 0.94 / 0.94 / 0.94).
    assert!(asp3 >= asp2, "layout 3 should not lose to layout 2");
    assert!((asp1 - asp2).abs() < 0.05);
}

#[test]
fn shielding_beats_exposure_on_large_codes() {
    // The paper's headline claim, on the heuristic path (tiny SMT budget
    // forces the fallback, like the paper's timeout cases).
    let (prov1, asp1, _, _) = pipeline("hamming", Layout::NoShielding, Duration::from_millis(10));
    let (prov2, asp2, _, _) = pipeline("hamming", Layout::BottomStorage, Duration::from_millis(10));
    let (prov3, asp3, _, _) = pipeline(
        "hamming",
        Layout::DoubleSidedStorage,
        Duration::from_millis(10),
    );
    assert_eq!(prov1, Provenance::Heuristic);
    assert_eq!(prov2, Provenance::Heuristic);
    assert_eq!(prov3, Provenance::Heuristic);
    assert!(
        asp2 > asp1 + 0.1,
        "bottom storage ({asp2:.3}) must clearly beat no shielding ({asp1:.3})"
    );
    assert!(
        asp3 >= asp2 - 1e-9,
        "double-sided ({asp3:.3}) must not lose to bottom storage ({asp2:.3})"
    );
}

#[test]
fn every_code_schedules_and_verifies_heuristically() {
    // Heuristic path for all six codes × three layouts (fast).
    for code in [
        "steane",
        "surface",
        "shor",
        "hamming",
        "tetrahedral",
        "honeycomb",
    ] {
        for layout in [
            Layout::NoShielding,
            Layout::BottomStorage,
            Layout::DoubleSidedStorage,
        ] {
            let (_, asp, r, _) = pipeline(code, layout, Duration::from_millis(1));
            assert!(asp > 0.0 && asp <= 1.0);
            assert!(r > 0);
        }
    }
}

#[test]
fn surface25_schedules_on_scaled_architecture() {
    // Beyond Table I: the distance-5 rotated surface code (25 qubits) on a
    // wider zoned grid, scheduled heuristically and fully verified.
    let code = nasp::qec::families::rotated_surface(5);
    let targets = code.zero_state_stabilizers();
    let circuit = graph_state::synthesize(&targets).expect("synthesizable");
    let config = ArchConfig {
        x_max: 12, // 13 columns × 2 storage rows = 26 ≥ 25 home sites
        c_max: 9,
        r_max: 7,
        ..ArchConfig::paper(Layout::BottomStorage)
    };
    let problem = Problem::new(config, &circuit);
    let schedule = nasp::core::heuristic::schedule(&problem).expect("heuristic handles surface-25");
    assert!(validate_schedule(&schedule, &problem.gates).is_empty());
    let state = run_layers(&circuit, &schedule.cz_layers());
    assert!(check_state(&state, &targets).holds_up_to_pauli_frame());
}

#[test]
fn facade_reexports_work_together() {
    // Build a problem through every facade module in one flow.
    let mut sat = nasp::sat::Solver::new();
    let v = sat.new_var();
    sat.add_clause([v.positive()]);
    assert_eq!(sat.solve(), nasp::sat::SolveResult::Sat);

    let mut smt = nasp::smt::Ctx::new();
    let x = smt.int_var(0, 3, "x");
    let c = smt.ge_const(x, 2);
    smt.assert(c);
    assert_eq!(smt.solve(), nasp::smt::SolveResult::Sat);

    let code = nasp::qec::catalog::steane();
    let mut tableau = nasp::sim::Tableau::new_plus(code.num_qubits());
    tableau.cz(0, 1);
    assert!(tableau.num_qubits() == 7);

    let cfg = nasp::arch::ArchConfig::paper(nasp::arch::Layout::BottomStorage);
    assert!(cfg.has_storage());
}
