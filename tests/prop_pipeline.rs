//! Property tests across crates: random gate lists must either be
//! scheduled *correctly* (validated + simulator-verified) or rejected —
//! never silently mis-scheduled.

use std::time::Duration;

use nasp::arch::{validate_schedule, ArchConfig, Layout};
use nasp::core::{solve, Problem, SolveOptions};
use nasp::qec::StatePrepCircuit;
use nasp::sim::{check_state, run_layers, Tableau};
use proptest::prelude::*;

/// Builds the target stabilizers of the graph state a CZ list prepares
/// (|+⟩^n then CZs): K_v = X_v ∏_{u ∈ N(v)} Z_u.
fn graph_state_targets(n: usize, edges: &[(usize, usize)]) -> Vec<nasp::qec::Pauli> {
    let mut t = Tableau::new_plus(n);
    for &(a, b) in edges {
        t.cz(a, b);
    }
    t.stabilizers()
}

fn random_gates(n: usize) -> impl Strategy<Value = Vec<(usize, usize)>> {
    prop::collection::btree_set((0..n, 0..n), 1..=6).prop_map(move |set| {
        set.into_iter()
            .filter(|&(a, b)| a != b)
            .map(|(a, b)| if a < b { (a, b) } else { (b, a) })
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_instances_schedule_correctly(
        gates in random_gates(6),
        layout_idx in 0usize..3,
    ) {
        prop_assume!(!gates.is_empty());
        let layout = [
            Layout::NoShielding,
            Layout::BottomStorage,
            Layout::DoubleSidedStorage,
        ][layout_idx];
        let n = 6;
        let problem = Problem::from_gates(ArchConfig::paper(layout), n, gates.clone());
        let options = SolveOptions::builder()
            .time_budget(Duration::from_secs(25))
            .build();
        let report = solve(&problem, &options);
        let Some(schedule) = report.schedule else {
            // Allowed outcome: no schedule within budget and the heuristic
            // failed — but the heuristic handles every instance here.
            return Err(TestCaseError::fail("no schedule produced"));
        };
        let violations = validate_schedule(&schedule, &problem.gates);
        prop_assert!(violations.is_empty(), "violations: {violations:?}");

        // Execute the schedule and compare against the expected graph state.
        let circuit = StatePrepCircuit {
            num_qubits: n,
            cz_edges: gates.clone(),
            hadamards: vec![],
            phase_gates: vec![],
        };
        let targets = graph_state_targets(n, &gates);
        let state = run_layers(&circuit, &schedule.cz_layers());
        let verdict = check_state(&state, &targets);
        prop_assert!(
            verdict.holds_up_to_pauli_frame(),
            "schedule prepares the wrong state"
        );
        // Graph states from CZs on |+⟩ have no sign ambiguity at all.
        prop_assert!(verdict.holds_exactly(), "unexpected sign flips");
    }
}
