//! Workspace smoke test: one fast, deterministic pass through the public
//! facade — catalog → STABGRAPH synthesis → optimal solve → operational
//! validation → simulator verification — pinning the re-exported API
//! surface that README and the quickstart doctest advertise.

use std::time::Duration;

use nasp::arch::{evaluate, validate_schedule, ArchConfig, BoundaryOps, Layout, OpParams};
use nasp::core::{solve, Problem, Provenance, SolveOptions};
use nasp::qec::{catalog, graph_state};
use nasp::sim::{check_state, run_layers};

#[test]
fn steane_pipeline_through_the_facade() {
    // 1. Code + circuit from the QEC layer.
    let code = catalog::steane();
    assert_eq!(code.num_qubits(), 7);
    let targets = code.zero_state_stabilizers();
    let circuit = graph_state::synthesize(&targets).expect("Steane synthesizes");
    assert_eq!(circuit.num_qubits, 7);
    assert!(!circuit.cz_edges.is_empty());

    // 2. Optimal schedule on the paper's bottom-storage architecture.
    let config = ArchConfig::paper(Layout::BottomStorage);
    let problem = Problem::new(config, &circuit);
    let options = SolveOptions::builder()
        .time_budget(Duration::from_secs(60))
        .build();
    let report = solve(&problem, &options);
    assert!(report.is_optimal());
    assert_eq!(report.provenance, Provenance::Optimal);

    // 3. Structure matches the paper's Table I Steane row (#R = 3, #T = 2).
    let schedule = report.schedule.expect("Steane is quickly solvable");
    assert_eq!(schedule.num_rydberg(), 3);
    assert_eq!(schedule.num_transfer(), 2);

    // 4. Independent validator accepts the schedule.
    assert!(validate_schedule(&schedule, &problem.gates).is_empty());

    // 5. The tableau simulator confirms the prepared state exactly.
    let state = run_layers(&circuit, &schedule.cz_layers());
    let verdict = check_state(&state, &targets);
    assert!(verdict.holds_up_to_pauli_frame());

    // 6. Metrics stay in the meaningful range.
    let metrics = evaluate(
        &schedule,
        &OpParams::default(),
        BoundaryOps {
            hadamards: circuit.hadamards.len(),
            phase_gates: circuit.phase_gates.len(),
        },
    );
    assert!(metrics.asp > 0.0 && metrics.asp <= 1.0);
}
