//! Offline stand-in for [proptest](https://docs.rs/proptest).
//!
//! The build environment has no network access, so this shim implements
//! the subset of proptest this workspace's property suites use: the
//! [`Strategy`] trait with `prop_map`/`prop_flat_map`, integer-range and
//! tuple strategies, `any::<bool>()`, `prop::collection::{vec,
//! btree_set}`, [`Just`], `prop_oneof!`, and the [`proptest!`] test
//! runner with `prop_assert*` / `prop_assume!` and `ProptestConfig`.
//!
//! Differences from real proptest: sampling is a fixed deterministic
//! PRNG seeded from the test name (reproducible across runs and
//! platforms), and failing cases are reported without shrinking.

use std::collections::BTreeSet;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Everything a property-test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Mirrors the `prop` module path (`prop::collection::vec`, ...).
pub mod prop {
    pub use crate::collection;
}

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic xorshift* PRNG driving all sampling.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name, so each test gets a fixed
    /// but distinct random sequence.
    pub fn deterministic(name: &str) -> Self {
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        for b in name.bytes() {
            state = (state ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
        }
        TestRng { state: state | 1 }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        // xorshift64* (Marsaglia / Vigna).
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty sampling domain");
        self.next_u64() % bound
    }
}

// ---------------------------------------------------------------------------
// Strategy trait and combinators
// ---------------------------------------------------------------------------

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each produced value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Always produces a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between equally-weighted boxed strategies
/// (the engine behind [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].sample(rng)
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies
// ---------------------------------------------------------------------------

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(lo < hi, "empty range strategy");
                let span = (hi - lo) as u128;
                (lo + (u128::from(rng.next_u64()) % span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let lo = *self.start() as i128;
                let hi = *self.end() as i128;
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u128;
                (lo + (u128::from(rng.next_u64()) % span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = rng.next_u64() as f64 / (u64::MAX as f64 + 1.0);
                self.start + (self.end - self.start) * unit as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let unit = rng.next_u64() as f64 / u64::MAX as f64;
                lo + (hi - lo) * unit as $t
            }
        }
    )*};
}

impl_float_range_strategies!(f32, f64);

/// Strategy for "any value of `T`"; see [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of `Self`.
    fn arbitrary_sample(rng: &mut TestRng) -> Self;
}

/// `any::<T>()` — the full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary_sample(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary_sample(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_sample(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

// ---------------------------------------------------------------------------
// Collection strategies
// ---------------------------------------------------------------------------

/// Strategies for collections, mirroring `proptest::collection`.
pub mod collection {
    use super::*;

    /// An inclusive size window for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        /// Smallest allowed size.
        pub min: usize,
        /// Largest allowed size.
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            self.min + rng.below((self.max - self.min + 1) as u64) as usize
        }
    }

    /// `Vec` of values from `element`, with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `BTreeSet` of values from `element`. Aims for a size drawn from
    /// `size`; like real proptest, the result may be smaller when the
    /// element domain is too small to fill the set.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.sample(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target.saturating_mul(8) + 16 {
                set.insert(self.element.sample(rng));
                attempts += 1;
            }
            set
        }
    }
}

// ---------------------------------------------------------------------------
// Test runner
// ---------------------------------------------------------------------------

/// Runner configuration; only `cases` is honored by the shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; the shim trims it to keep the
        // CI property suites fast. Tests that need more ask explicitly.
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case violated an assumption and should be ignored.
    Reject(String),
    /// The case failed an assertion.
    Fail(String),
}

impl TestCaseError {
    /// A failed case with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected (assumption-violating) case.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
// The `#[test]` in the example is how the macro is really invoked; the
// doctest only compile-checks it (the runtime path is covered by this
// crate's own unit tests below).
#[allow(clippy::test_attr_in_doctest)]
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            let mut __passed: u32 = 0;
            let mut __attempts: u32 = 0;
            let __max_attempts = __config.cases.saturating_mul(16).max(1024);
            while __passed < __config.cases {
                __attempts += 1;
                assert!(
                    __attempts <= __max_attempts,
                    "proptest shim: too many rejected cases in {} ({} attempts for {} cases)",
                    stringify!($name),
                    __attempts,
                    __config.cases,
                );
                $(let $pat = $crate::Strategy::sample(&($strat), &mut __rng);)+
                #[allow(unreachable_code, clippy::redundant_closure_call)]
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match __outcome {
                    ::std::result::Result::Ok(()) => __passed += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                        panic!("proptest case failed: {}", __msg);
                    }
                }
            }
        }
        $crate::__proptest_impl!(($cfg); $($rest)*);
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = &$left;
        let __r = &$right;
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = &$left;
        let __r = &$right;
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                __l,
                __r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = &$left;
        let __r = &$right;
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                __l, __r
            )));
        }
    }};
}

/// Rejects (skips) the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(100))]

        #[test]
        fn ranges_stay_in_bounds(a in 3usize..9, b in -5i64..=5) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((-5..=5).contains(&b));
        }

        #[test]
        fn collections_respect_sizes(
            v in prop::collection::vec((0usize..4, any::<bool>()), 2..=5),
            s in prop::collection::btree_set(0u8..100, 1..=6),
        ) {
            prop_assert!(v.len() >= 2 && v.len() <= 5);
            prop_assert!(s.len() <= 6);
        }

        #[test]
        fn combinators_compose(
            (n, v) in (1usize..5).prop_flat_map(|n| {
                prop::collection::vec(0..n, 1..=3).prop_map(move |v| (n, v))
            }),
            pick in prop_oneof![Just(1u8), Just(2), Just(3)],
        ) {
            prop_assume!(n > 0);
            prop_assert!(v.iter().all(|&x| x < n));
            prop_assert!((1..=3).contains(&pick));
        }
    }

    #[test]
    fn deterministic_rng_is_stable() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
