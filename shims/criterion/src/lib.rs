//! Offline stand-in for [criterion](https://docs.rs/criterion).
//!
//! The build environment has no network access, so this shim provides
//! the criterion API surface the workspace's bench harnesses use —
//! `criterion_group!` / `criterion_main!`, [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`BenchmarkId`], and `Bencher::iter`
//! — backed by a simple wall-clock timer. It reports mean time per
//! iteration over a short measurement window; it does not do criterion's
//! statistical analysis, HTML reports, or regression detection.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function, re-exported for benches.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A function-name + parameter id, rendered as `name/param`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Drives the timed closure of one benchmark.
pub struct Bencher {
    measurement_time: Duration,
    /// Mean nanoseconds per iteration, filled in by [`Bencher::iter`].
    mean_nanos: f64,
    iterations: u64,
}

impl Bencher {
    /// Times `routine`, first warming up, then running batches until the
    /// measurement window is used up.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + batch-size calibration.
        let calib_start = Instant::now();
        black_box(routine());
        let once = calib_start.elapsed();
        let batch = if once.is_zero() {
            1024
        } else {
            (self.measurement_time.as_nanos() / 20 / once.as_nanos().max(1)).clamp(1, 16384) as u64
        };

        let mut total = Duration::ZERO;
        let mut iterations = 0u64;
        while total < self.measurement_time {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            total += start.elapsed();
            iterations += batch;
        }
        self.iterations = iterations;
        self.mean_nanos = total.as_nanos() as f64 / iterations as f64;
    }
}

fn human_time(nanos: f64) -> String {
    if nanos < 1_000.0 {
        format!("{nanos:.1} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos / 1_000_000_000.0)
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, measurement_time: Duration, mut f: F) {
    let mut bencher = Bencher {
        measurement_time,
        mean_nanos: 0.0,
        iterations: 0,
    };
    f(&mut bencher);
    println!(
        "{name:<48} time: {:>12}   ({} iterations)",
        human_time(bencher.mean_nanos),
        bencher.iterations
    );
}

/// Top-level bench driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets the per-benchmark measurement window.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = time;
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.measurement_time, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            measurement_time: self.measurement_time,
            _criterion: self,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's timing window is set
    /// via [`BenchmarkGroup::measurement_time`] instead of sample counts.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Sets the per-benchmark measurement window for this group.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = time;
        self
    }

    /// Runs a benchmark inside this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into());
        run_one(&label, self.measurement_time, f);
        self
    }

    /// Runs a benchmark with an explicit input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.name);
        run_one(&label, self.measurement_time, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles bench functions into a callable group, like criterion's.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
