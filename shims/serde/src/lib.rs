//! Offline stand-in for [serde](https://serde.rs).
//!
//! The build environment for this workspace has no network access, so the
//! real `serde` crate cannot be fetched. This shim implements the exact
//! API surface the `nasp` workspace uses — the [`Serialize`] /
//! [`Deserialize`] traits plus `#[derive(Serialize, Deserialize)]` — over
//! an in-memory JSON [`Value`] model. The companion `serde_json` shim
//! provides `to_string` / `to_string_pretty` / `from_str` on top of it.
//!
//! The design intentionally mirrors externally-tagged serde JSON:
//! structs serialize to objects, unit enum variants to strings, and
//! data-carrying variants to single-key objects, so output stays
//! compatible with what the real serde + serde_json pair would emit.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// An in-memory JSON value: the interchange type between [`Serialize`],
/// [`Deserialize`] and the `serde_json` shim.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (covers all negative and small positive ints).
    Int(i64),
    /// Unsigned integer (for values above `i64::MAX`).
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object value by key.
    pub fn get_field(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Returns the object fields if this value is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Returns the array elements if this value is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// A short description of the value's JSON type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into a [`Value`].
pub trait Serialize {
    /// Converts `self` into the JSON value model.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the JSON value model.
    fn from_value(value: &Value) -> Result<Self, Error>;

    /// Hook for absent object fields. The default is an error; `Option`
    /// overrides it to yield `None`, mirroring serde's treatment of
    /// optional fields.
    fn missing_field(field: &str) -> Result<Self, Error> {
        Err(Error::new(format!("missing field `{field}`")))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::new(format!(
                "expected bool, got {}",
                other.type_name()
            ))),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let wide = match value {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u)
                        .map_err(|_| Error::new("integer out of range"))?,
                    other => {
                        return Err(Error::new(format!(
                            "expected integer, got {}",
                            other.type_name()
                        )))
                    }
                };
                <$t>::try_from(wide).map_err(|_| Error::new("integer out of range"))
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let wide = match value {
                    Value::UInt(u) => *u,
                    Value::Int(i) => u64::try_from(*i)
                        .map_err(|_| Error::new("integer out of range"))?,
                    other => {
                        return Err(Error::new(format!(
                            "expected integer, got {}",
                            other.type_name()
                        )))
                    }
                };
                <$t>::try_from(wide).map_err(|_| Error::new("integer out of range"))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    other => Err(Error::new(format!(
                        "expected number, got {}",
                        other.type_name()
                    ))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::new(format!(
                "expected string, got {}",
                other.type_name()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::new(format!(
                "expected single-char string, got {}",
                other.type_name()
            ))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn missing_field(_field: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::new(format!(
                "expected array, got {}",
                other.type_name()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(value)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::new(format!("expected array of length {N}, got {len}")))
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::new(format!(
                "expected array, got {}",
                other.type_name()
            ))),
        }
    }
}

impl<T: Serialize + Ord> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        // Sort elements so serialization is deterministic.
        let ordered: BTreeSet<&T> = self.iter().collect();
        Value::Array(ordered.into_iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for HashSet<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::new(format!(
                "expected array, got {}",
                other.type_name()
            ))),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::new(format!(
                "expected object, got {}",
                other.type_name()
            ))),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so serialization is deterministic.
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::new(format!(
                "expected object, got {}",
                other.type_name()
            ))),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                const ARITY: usize = 0 $(+ { let _ = $idx; 1 })+;
                let items = value.as_array().ok_or_else(|| {
                    Error::new(format!("expected array, got {}", value.type_name()))
                })?;
                if items.len() != ARITY {
                    return Err(Error::new(format!(
                        "expected tuple of {} elements, got {}",
                        ARITY,
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("secs".to_string(), Value::UInt(self.as_secs())),
            (
                "nanos".to_string(),
                Value::UInt(u64::from(self.subsec_nanos())),
            ),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let secs = value
            .get_field("secs")
            .ok_or_else(|| Error::new("missing field `secs`"))
            .and_then(u64::from_value)?;
        let nanos = value
            .get_field("nanos")
            .ok_or_else(|| Error::new("missing field `nanos`"))
            .and_then(u32::from_value)?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}
