//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shim `serde` crate without depending on `syn`/`quote` (unavailable in
//! this offline build environment). The item is parsed directly from the
//! `proc_macro` token stream; only non-generic structs and enums are
//! supported, which covers every derived type in this workspace.
//!
//! Encoding follows externally-tagged serde JSON conventions: structs are
//! objects, newtype structs are transparent, unit variants are strings,
//! and data-carrying variants are single-key objects.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shape of one struct body or enum variant payload.
enum Fields {
    /// `struct X;` or a bare enum variant.
    Unit,
    /// `(A, B, ...)` with the given arity.
    Tuple(usize),
    /// `{ a: A, b: B }` with the given field names.
    Named(Vec<String>),
}

/// A parsed `struct` or `enum` item.
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

/// Derives `serde::Serialize` for a non-generic struct or enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item)
            .parse()
            .expect("generated Serialize impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

/// Derives `serde::Deserialize` for a non-generic struct or enum.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item)
            .parse()
            .expect("generated Deserialize impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("compile_error parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Advances past any `#[...]` attributes starting at `i`.
fn skip_attributes(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Advances past `pub` / `pub(crate)` / `pub(in ...)` starting at `i`.
fn skip_visibility(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Splits a token slice on top-level commas, tracking `<...>` nesting so
/// commas inside generic argument lists (e.g. `BTreeMap<String, u32>`) do
/// not split. Empty chunks (trailing commas) are dropped.
fn split_top_level_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut chunks = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0isize;
    for tok in tokens {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    if !current.is_empty() {
                        chunks.push(std::mem::take(&mut current));
                    }
                    continue;
                }
                _ => {}
            }
        }
        current.push(tok.clone());
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

/// Parses `{ a: A, b: B }` field chunks into their names.
fn parse_named_fields(group_tokens: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    for chunk in split_top_level_commas(group_tokens) {
        let mut i = skip_attributes(&chunk, 0);
        i = skip_visibility(&chunk, i);
        match chunk.get(i) {
            Some(TokenTree::Ident(id)) => names.push(id.to_string()),
            other => return Err(format!("expected field name, found {other:?}")),
        }
    }
    Ok(names)
}

/// Parses the payload of one enum variant (or a struct body group).
fn parse_variant_fields(tokens: &[TokenTree], i: usize) -> Result<Fields, String> {
    match tokens.get(i) {
        None => Ok(Fields::Unit),
        Some(TokenTree::Group(g)) => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            match g.delimiter() {
                Delimiter::Parenthesis => Ok(Fields::Tuple(split_top_level_commas(&inner).len())),
                Delimiter::Brace => Ok(Fields::Named(parse_named_fields(&inner)?)),
                _ => Err("unexpected delimiter in variant".to_string()),
            }
        }
        // `Variant = 3` explicit discriminants act like unit variants.
        Some(TokenTree::Punct(p)) if p.as_char() == '=' => Ok(Fields::Unit),
        Some(other) => Err(format!("unexpected token in variant: {other}")),
    }
}

/// Parses a full `struct`/`enum` item from the derive input.
fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attributes(&tokens, 0);
    i = skip_visibility(&tokens, i);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "serde shim derive does not support generic type `{name}`"
            ));
        }
    }

    match keyword.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                // `struct X;`
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                None => Fields::Unit,
                _ => parse_variant_fields(&tokens, i)?,
            };
            Ok(Item::Struct { name, fields })
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    g.stream().into_iter().collect::<Vec<_>>()
                }
                other => return Err(format!("expected enum body, found {other:?}")),
            };
            let mut variants = Vec::new();
            for chunk in split_top_level_commas(&body) {
                let mut j = skip_attributes(&chunk, 0);
                j = skip_visibility(&chunk, j);
                let vname = match chunk.get(j) {
                    Some(TokenTree::Ident(id)) => id.to_string(),
                    other => return Err(format!("expected variant name, found {other:?}")),
                };
                let vfields = parse_variant_fields(&chunk, j + 1)?;
                variants.push((vname, vfields));
            }
            Ok(Item::Enum { name, variants })
        }
        other => Err(format!("cannot derive serde traits for `{other}` items")),
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                // Newtype structs are transparent, like serde's default.
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                        .collect();
                    format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
                }
                Fields::Named(names) => gen_object_literal(names, "&self."),
            };
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}\n"
            )
        }
        Item::Enum { name, variants } => {
            if variants.is_empty() {
                return format!(
                    "#[automatically_derived]\n\
                     impl ::serde::Serialize for {name} {{\n\
                         fn to_value(&self) -> ::serde::Value {{ match *self {{}} }}\n\
                     }}\n"
                );
            }
            let mut arms = String::new();
            for (vname, vfields) in variants {
                let arm = match vfields {
                    Fields::Unit => format!(
                        "{name}::{vname} => \
                         ::serde::Value::Str(::std::string::String::from({vname:?})),\n"
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
                        };
                        format!(
                            "{name}::{vname}({binds}) => ::serde::Value::Object(::std::vec![\
                             (::std::string::String::from({vname:?}), {payload})]),\n",
                            binds = binds.join(", ")
                        )
                    }
                    Fields::Named(fnames) => {
                        let payload = gen_object_literal(fnames, "");
                        format!(
                            "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(::std::vec![\
                             (::std::string::String::from({vname:?}), {payload})]),\n",
                            binds = fnames.join(", ")
                        )
                    }
                };
                arms.push_str(&arm);
            }
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ match self {{ {arms} }} }}\n\
                 }}\n"
            )
        }
    }
}

/// `Value::Object(vec![("a", to_value(<prefix>a)), ...])` for named fields.
fn gen_object_literal(names: &[String], prefix: &str) -> String {
    if names.is_empty() {
        return "::serde::Value::Object(::std::vec::Vec::new())".to_string();
    }
    let entries: Vec<String> = names
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from({f:?}), ::serde::Serialize::to_value({prefix}{f}))"
            )
        })
        .collect();
    format!(
        "::serde::Value::Object(::std::vec![{}])",
        entries.join(", ")
    )
}

/// `field: match value.get_field("field") {...}` initializers for named fields.
fn gen_named_initializers(names: &[String], source: &str) -> String {
    names
        .iter()
        .map(|f| {
            format!(
                "{f}: match {source}.get_field({f:?}) {{\n\
                     Some(__v) => ::serde::Deserialize::from_value(__v)?,\n\
                     None => ::serde::Deserialize::missing_field({f:?})?,\n\
                 }},\n"
            )
        })
        .collect()
}

/// Tuple-payload initializers `from_value(&__items[k])?` for arity `n`.
fn gen_tuple_initializers(n: usize) -> String {
    (0..n)
        .map(|k| format!("::serde::Deserialize::from_value(&__items[{k}])?, "))
        .collect()
}

fn gen_deserialize(item: &Item) -> String {
    let body = match item {
        Item::Struct { name, fields } => match fields {
            Fields::Unit => format!(
                "match __value {{\n\
                     ::serde::Value::Null => ::std::result::Result::Ok({name}),\n\
                     __other => ::std::result::Result::Err(::serde::Error::new(\
                         ::std::format!(\"expected null for unit struct {name}, got {{}}\", \
                         __other.type_name()))),\n\
                 }}"
            ),
            Fields::Tuple(1) => format!(
                "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__value)?))"
            ),
            Fields::Tuple(n) => format!(
                "{{\n\
                     let __items = __value.as_array().ok_or_else(|| ::serde::Error::new(\
                         ::std::format!(\"expected array, got {{}}\", __value.type_name())))?;\n\
                     if __items.len() != {n} {{\n\
                         return ::std::result::Result::Err(::serde::Error::new(\
                             ::std::format!(\"expected {n} elements, got {{}}\", __items.len())));\n\
                     }}\n\
                     ::std::result::Result::Ok({name}({inits}))\n\
                 }}",
                inits = gen_tuple_initializers(*n)
            ),
            Fields::Named(names) => format!(
                "{{\n\
                     if __value.as_object().is_none() {{\n\
                         return ::std::result::Result::Err(::serde::Error::new(\
                             ::std::format!(\"expected object, got {{}}\", __value.type_name())));\n\
                     }}\n\
                     ::std::result::Result::Ok({name} {{\n{inits}\n}})\n\
                 }}",
                inits = gen_named_initializers(names, "__value")
            ),
        },
        Item::Enum { name, variants } => {
            let mut unit_checks = String::new();
            let mut data_checks = String::new();
            for (vname, vfields) in variants {
                match vfields {
                    Fields::Unit => {
                        unit_checks.push_str(&format!(
                            "if _s == {vname:?} {{ \
                             return ::std::result::Result::Ok({name}::{vname}); }}\n"
                        ));
                    }
                    Fields::Tuple(1) => {
                        data_checks.push_str(&format!(
                            "if _tag == {vname:?} {{\n\
                                 return ::std::result::Result::Ok({name}::{vname}(\
                                     ::serde::Deserialize::from_value(_payload)?));\n\
                             }}\n"
                        ));
                    }
                    Fields::Tuple(n) => {
                        data_checks.push_str(&format!(
                            "if _tag == {vname:?} {{\n\
                                 let __items = _payload.as_array().ok_or_else(|| \
                                     ::serde::Error::new(\"expected array payload\"))?;\n\
                                 if __items.len() != {n} {{\n\
                                     return ::std::result::Result::Err(::serde::Error::new(\
                                         \"wrong payload arity\"));\n\
                                 }}\n\
                                 return ::std::result::Result::Ok({name}::{vname}({inits}));\n\
                             }}\n",
                            inits = gen_tuple_initializers(*n)
                        ));
                    }
                    Fields::Named(fnames) => {
                        data_checks.push_str(&format!(
                            "if _tag == {vname:?} {{\n\
                                 return ::std::result::Result::Ok({name}::{vname} {{\n{inits}\n}});\n\
                             }}\n",
                            inits = gen_named_initializers(fnames, "_payload")
                        ));
                    }
                }
            }
            format!(
                "match __value {{\n\
                     ::serde::Value::Str(_s) => {{\n\
                         {unit_checks}\
                         ::std::result::Result::Err(::serde::Error::new(\
                             ::std::format!(\"unknown variant `{{_s}}` of {name}\")))\n\
                     }}\n\
                     ::serde::Value::Object(__fields) if __fields.len() == 1 => {{\n\
                         let (_tag, _payload) = &__fields[0];\n\
                         {data_checks}\
                         ::std::result::Result::Err(::serde::Error::new(\
                             ::std::format!(\"unknown variant `{{_tag}}` of {name}\")))\n\
                     }}\n\
                     __other => ::std::result::Result::Err(::serde::Error::new(\
                         ::std::format!(\"invalid value for enum {name}: {{}}\", \
                         __other.type_name()))),\n\
                 }}"
            )
        }
    };
    let name = match item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__value: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
}
