//! Offline stand-in for [serde_json](https://docs.rs/serde_json).
//!
//! Provides `to_string`, `to_string_pretty` and `from_str` over the shim
//! `serde` crate's [`Value`] model. The emitted text is standard JSON and
//! the parser accepts standard JSON (objects, arrays, strings with
//! escapes, integers, floats with exponents, booleans, null), so
//! roundtrips through real serde_json output also work.

use serde::{Deserialize, Serialize, Value};

pub use serde::Error;

/// Serializes a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to human-readable JSON with two-space indentation.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::from_value(&value)
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (k, item) in items.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                write_newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            write_newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (k, (key, item)) in fields.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                write_newline_indent(out, indent, depth + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            write_newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..(width * depth) {
            out.push(' ');
        }
    }
}

/// Floats print via Rust's shortest-roundtrip formatting; non-finite
/// values become `null` (JSON has no NaN/Infinity), matching serde_json.
fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Keep a trailing ".0" so the value reparses as a float.
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&f.to_string());
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn consume_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') if self.consume_literal("null") => Ok(Value::Null),
            Some(b't') if self.consume_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.consume_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape sequence"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if !self.consume_literal("\\u") {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                let combined =
                                    0x10000 + ((code - 0xD800) << 10) + (low.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string("hi\n").unwrap(), "\"hi\\n\"");
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<u32>(" 42 ").unwrap(), 42);
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(from_str::<String>("\"a\\u0041\"").unwrap(), "aA");
    }

    #[test]
    fn roundtrip_collections() {
        let v = vec![(1usize, 2usize), (3, 4)];
        let text = to_string(&v).unwrap();
        assert_eq!(text, "[[1,2],[3,4]]");
        let back: Vec<(usize, usize)> = from_str(&text).unwrap();
        assert_eq!(back, v);

        let opt: Option<u8> = None;
        assert_eq!(to_string(&opt).unwrap(), "null");
        assert_eq!(from_str::<Option<u8>>("null").unwrap(), None);
    }

    #[test]
    fn pretty_is_reparseable() {
        let v = vec![vec![1u8, 2], vec![3]];
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains('\n'));
        let back: Vec<Vec<u8>> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn whole_floats_keep_a_fraction() {
        assert_eq!(to_string(&3.0f64).unwrap(), "3.0");
        assert_eq!(from_str::<f64>("3.0").unwrap(), 3.0);
    }
}
