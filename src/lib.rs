//! # nasp — Optimal State Preparation for Logical Arrays on Zoned Neutral Atom Quantum Computers
//!
//! A from-scratch Rust reproduction of the DATE 2025 paper by Stade,
//! Schmid, Burgholzer and Wille (arXiv:2411.09738): an SMT-based compiler
//! that turns QEC state-preparation circuits into *minimal* schedules of
//! Rydberg beams, trap transfers and AOD shuttling for zoned neutral atom
//! architectures.
//!
//! This facade crate re-exports the whole stack:
//!
//! | Module | Crate | Role |
//! |--------|-------|------|
//! | [`sat`] | `nasp-sat` | CDCL SAT solver (substitute for Z3's core) |
//! | [`smt`] | `nasp-smt` | finite-domain SMT layer over SAT |
//! | [`qec`] | `nasp-qec` | stabilizer codes, catalog, STABGRAPH synthesis |
//! | [`sim`] | `nasp-sim` | tableau simulator / schedule verification |
//! | [`arch`] | `nasp-arch` | zoned architecture model, validator, ASP metrics |
//! | [`core`] | `nasp-core` | the paper's contribution: encoding + minimal-stage solver |
//! | [`serve`] | `nasp-serve` | JSONL scheduling service: cache, dedup, warm sessions |
//!
//! One-shot solving goes through [`core::solve()`]; long-lived callers hold
//! an [`Engine`] and keep per-problem [`Session`]s warm across repeated
//! queries. The [`serve`] module packages the same engine as a resident
//! service ([`Server`]) answering JSONL requests over stdin or TCP.
//!
//! ## Quickstart
//!
//! ```
//! use nasp::arch::{ArchConfig, Layout};
//! use nasp::core::{solve, Problem, SolveOptions};
//! use nasp::qec::{catalog, graph_state};
//!
//! // 1. Pick a QEC code and synthesize its |0⟩_L preparation circuit.
//! let code = catalog::steane();
//! let circuit = graph_state::synthesize(&code.zero_state_stabilizers())?;
//!
//! // 2. Schedule it on the zoned architecture (bottom storage layout).
//! let config = ArchConfig::paper(Layout::BottomStorage);
//! let problem = Problem::new(config, &circuit);
//! let report = solve(&problem, &SolveOptions::default());
//! let schedule = report.schedule.expect("Steane is quickly solvable");
//!
//! // 3. Inspect: 3 Rydberg beams and 2 transfer stages, like the paper.
//! assert_eq!(schedule.num_rydberg(), 3);
//! assert_eq!(schedule.num_transfer(), 2);
//! # Ok::<(), nasp::qec::graph_state::SynthesisError>(())
//! ```

#![warn(missing_docs)]

pub use nasp_arch as arch;
pub use nasp_core as core;
pub use nasp_qec as qec;
pub use nasp_sat as sat;
pub use nasp_serve as serve;
pub use nasp_sim as sim;
pub use nasp_smt as smt;

pub use nasp_core::{Engine, Session, SolveOptionsBuilder};
pub use nasp_serve::{Request, Response, ServeConfig, Server};
