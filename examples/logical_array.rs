//! Logical-array preparation: several logical qubits at once.
//!
//! The experiments motivating the paper prepared 40 logical qubits in
//! parallel (Bluvstein et al. 2023). This example scales the architecture
//! model beyond the paper's 8×7 evaluation grid and prepares an array of
//! Steane-code logical qubits side by side, scheduling all patches' CZ
//! gates as one problem with the heuristic scheduler.
//!
//! Run with: `cargo run --release --example logical_array -- [patches]`

use nasp::arch::{evaluate, validate_schedule, ArchConfig, BoundaryOps, Layout, OpParams};
use nasp::core::{heuristic, Problem};
use nasp::qec::{catalog, graph_state, Pauli};
use nasp::sim::{check_state, run_layers};

fn main() {
    let patches: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let code = catalog::steane();
    let circuit =
        graph_state::synthesize(&code.zero_state_stabilizers()).expect("catalog codes synthesize");
    let n_per = code.num_qubits();
    let n = patches * n_per;

    // Replicate the circuit across patches with disjoint qubit blocks.
    let mut gates: Vec<(usize, usize)> = Vec::new();
    let mut hadamards = Vec::new();
    for p in 0..patches {
        let off = p * n_per;
        gates.extend(circuit.cz_edges.iter().map(|&(a, b)| (a + off, b + off)));
        hadamards.extend(circuit.hadamards.iter().map(|&q| q + off));
    }
    let combined = nasp::qec::StatePrepCircuit {
        num_qubits: n,
        cz_edges: gates.clone(),
        hadamards: hadamards.clone(),
        phase_gates: vec![],
    };

    // A wider architecture: enough storage for all patches, zoned like the
    // paper's bottom-storage layout. Every field of ArchConfig is public,
    // so design-space exploration beyond the paper's grid is one struct
    // literal away.
    // Two storage rows must hold all atoms: width ≥ ⌈n/2⌉.
    let width = ((n as i64 + 1) / 2).max(8);
    let config = ArchConfig {
        x_max: width - 1,
        c_max: width.min(12) - 1,
        r_max: 7,
        layout: Layout::Custom { e_min: 2, e_max: 6 },
        e_min: 2,
        e_max: 6,
        ..ArchConfig::paper(Layout::BottomStorage)
    };
    println!(
        "preparing {patches} Steane logical qubits = {n} atoms on a {}×{} grid",
        config.x_max + 1,
        config.y_max + 1
    );

    let problem = Problem::from_gates(config, n, gates);
    let schedule = heuristic::schedule(&problem).expect("heuristic handles replicated patches");
    let violations = validate_schedule(&schedule, &problem.gates);
    assert!(violations.is_empty(), "{violations:?}");

    // Verify all patches: each patch's stabilizers + logical Z, embedded.
    let mut targets = Vec::new();
    for p in 0..patches {
        for s in code.zero_state_stabilizers() {
            let mut x = vec![0u8; n];
            let mut z = vec![0u8; n];
            x[p * n_per..(p + 1) * n_per].copy_from_slice(s.x_bits());
            z[p * n_per..(p + 1) * n_per].copy_from_slice(s.z_bits());
            targets.push(Pauli::from_xz(x, z));
        }
    }
    let state = run_layers(&combined, &schedule.cz_layers());
    let check = check_state(&state, &targets);
    assert!(
        check.holds_up_to_pauli_frame(),
        "failed stabilizers: {:?}",
        check.failures()
    );

    let metrics = evaluate(
        &schedule,
        &OpParams::default(),
        BoundaryOps {
            hadamards: hadamards.len(),
            phase_gates: 0,
        },
    );
    println!(
        "schedule: {} beams, {} transfers, exec {:.3} ms, ASP {:.3}",
        metrics.num_rydberg,
        metrics.num_transfer,
        metrics.exec_time_ms(),
        metrics.asp
    );
    println!("all {patches} logical qubits verified in |0⟩_L ✓");
}
