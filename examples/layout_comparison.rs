//! Layout comparison for one code — a single-code slice of the paper's
//! Table I: how much does shielding idling qubits in storage zones help?
//!
//! Run with:
//! `cargo run --release --example layout_comparison -- [code] [budget_secs]`
//! where `code` is one of steane / surface / shor / hamming / tetrahedral /
//! honeycomb (default steane).

use std::time::Duration;

use nasp::arch::Layout;
use nasp::core::report::{run_experiment_with_circuit, ExperimentOptions};
use nasp::qec::{catalog, graph_state};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let code_name = args.get(1).map(String::as_str).unwrap_or("steane");
    let budget: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(30);

    let Some(code) = catalog::by_name(code_name) else {
        eprintln!("unknown code `{code_name}`; try steane, surface, shor, hamming, tetrahedral, honeycomb");
        std::process::exit(1);
    };
    let circuit = graph_state::synthesize(&code.zero_state_stabilizers())
        .expect("catalog codes always synthesize");
    println!(
        "{} ⟦{},{},{}⟧ with {} CZ gates, SMT budget {budget}s per layout\n",
        code.name(),
        code.num_qubits(),
        code.num_logical(),
        code.distance(),
        circuit.num_cz()
    );

    let options = ExperimentOptions {
        budget_per_instance: Duration::from_secs(budget),
        ..Default::default()
    };
    let mut baseline_asp = None;
    for layout in [
        Layout::NoShielding,
        Layout::BottomStorage,
        Layout::DoubleSidedStorage,
    ] {
        let r = run_experiment_with_circuit(&code, &circuit, layout, &options);
        assert!(r.valid && r.verified, "experiment must validate and verify");
        let delta = baseline_asp
            .map(|b: f64| format!("  (ΔASP {:+.4})", r.metrics.asp - b))
            .unwrap_or_default();
        baseline_asp = baseline_asp.or(Some(r.metrics.asp));
        println!("{}{delta}", r.table_row());
    }
    println!(
        "\nExpected shape (paper, Sec. V-C): shielded layouts (2) and (3) beat (1),\n\
         and (3) edges out (2) thanks to shorter shuttles and fewer transfers."
    );
}
