//! Design-space exploration — the paper's closing claim is that the
//! approach "provides valuable insights for the design of future quantum
//! devices". This example sweeps custom entangling-zone geometries for the
//! Steane code and reports how the zone split affects schedule length and
//! fidelity.
//!
//! Run with: `cargo run --release --example architecture_exploration`

use std::time::Duration;

use nasp::arch::{evaluate, ArchConfig, BoundaryOps, Layout, OpParams};
use nasp::core::{solve, Problem, SolveOptions};
use nasp::qec::{catalog, graph_state};

fn main() {
    let code = catalog::steane();
    let circuit = graph_state::synthesize(&code.zero_state_stabilizers())
        .expect("catalog codes always synthesize");
    let boundary = BoundaryOps {
        hadamards: circuit.hadamards.len(),
        phase_gates: circuit.phase_gates.len(),
    };

    println!("Steane code across custom zone splits (7-row architecture):");
    println!("entangling rows    stages   #R  #T   exec [ms]   ASP");
    // Sweep the entangling zone: from a single row up to the full grid.
    let candidates = [
        (3, 3), // one-row entangling zone in the middle
        (2, 4), // the paper's double-sided layout
        (2, 6), // the paper's bottom-storage layout
        (1, 5), // thick zone, thin storage on both sides
        (0, 6), // no storage at all (layout 1)
    ];
    for (e_min, e_max) in candidates {
        let layout = Layout::Custom { e_min, e_max };
        let config = ArchConfig::paper(layout);
        let problem = Problem::new(config, &circuit);
        let options = SolveOptions::builder()
            .time_budget(Duration::from_secs(45))
            .build();
        let report = solve(&problem, &options);
        let optimal = report.is_optimal();
        let Some(schedule) = report.schedule else {
            println!("[{e_min}, {e_max}]          no schedule found");
            continue;
        };
        let metrics = evaluate(&schedule, &OpParams::default(), boundary);
        let star = if optimal { " " } else { "*" };
        println!(
            "[{e_min}, {e_max}]            {:>4}{star}  {:>3} {:>3}   {:>8.3}   {:.3}",
            schedule.stages.len(),
            metrics.num_rydberg,
            metrics.num_transfer,
            metrics.exec_time_ms(),
            metrics.asp
        );
    }
    println!(
        "\nReading: a 1-row entangling zone forces serialization (more stages);\n\
         no storage exposes idlers to the beam. The sweet spots in between are\n\
         exactly what the paper's Layouts 2 and 3 capture."
    );
}
