//! Fault-injection demo: why independent verification matters.
//!
//! Takes a correct schedule for the surface code, then mutates it in three
//! physically meaningful ways (move an idler into the beam, double a CZ,
//! drop a beam) and shows that the operational validator and the stabilizer
//! simulator catch every mutation.
//!
//! Run with: `cargo run --release --example verify_schedule`

use nasp::arch::{validate_schedule, ArchConfig, Layout, Position, StageKind, Trap};
use nasp::core::{solve, Problem, SolveOptions};
use nasp::qec::{catalog, graph_state};
use nasp::sim::{check_state, run_layers};

fn main() {
    let code = catalog::surface9();
    let targets = code.zero_state_stabilizers();
    let circuit = graph_state::synthesize(&targets).expect("synthesizable");
    let config = ArchConfig::paper(Layout::BottomStorage);
    let problem = Problem::new(config, &circuit);
    let report = solve(&problem, &SolveOptions::default());
    let schedule = report.schedule.expect("surface-9 solves quickly");

    println!(
        "baseline: {} stages, validator violations = {}, simulator verdict = {}",
        schedule.stages.len(),
        validate_schedule(&schedule, &problem.gates).len(),
        check_state(&run_layers(&circuit, &schedule.cz_layers()), &targets)
            .holds_up_to_pauli_frame()
    );

    // Mutation 1: drag a shielded idler into the entangling zone.
    {
        let mut bad = schedule.clone();
        let t = (0..bad.stages.len())
            .find(|&t| bad.stages[t].is_rydberg())
            .expect("has a beam");
        let gated: Vec<usize> = bad
            .executed_pairs(t)
            .iter()
            .flat_map(|&(a, b)| [a, b])
            .collect();
        let idler = (0..bad.num_qubits)
            .find(|q| !gated.contains(q))
            .expect("has an idler");
        bad.stages[t].qubits[idler] = nasp::arch::QubitState {
            pos: Position {
                x: 7,
                y: 4,
                h: 0,
                v: 0,
            },
            trap: Trap::Slm,
        };
        let violations = validate_schedule(&bad, &problem.gates);
        println!(
            "mutation 1 (exposed idler): {} violations, e.g. `{}`",
            violations.len(),
            violations.first().expect("caught")
        );
    }

    // Mutation 2: replay one CZ layer twice (CZ² = identity ⇒ wrong state).
    {
        let mut layers = schedule.cz_layers();
        let first = layers[0].clone();
        layers.push(first);
        let verdict =
            check_state(&run_layers(&circuit, &layers), &targets).holds_up_to_pauli_frame();
        println!("mutation 2 (doubled CZ layer): simulator verdict = {verdict}");
        assert!(!verdict);
    }

    // Mutation 3: skip a whole beam.
    {
        let mut bad = schedule.clone();
        let t = (0..bad.stages.len())
            .find(|&t| bad.stages[t].is_rydberg())
            .expect("has a beam");
        // Turn the beam into a transfer stage with no flags: gates vanish.
        bad.stages[t].kind = StageKind::Transfer(Default::default());
        let violations = validate_schedule(&bad, &problem.gates);
        println!(
            "mutation 3 (dropped beam): {} violations, e.g. `{}`",
            violations.len(),
            violations.first().expect("caught")
        );
        let verdict = check_state(&run_layers(&circuit, &bad.cz_layers()), &targets)
            .holds_up_to_pauli_frame();
        assert!(!verdict);
        println!("mutation 3: simulator verdict = {verdict}");
    }

    println!("all injected faults were caught ✓");
}
