//! Quickstart: schedule the Steane code's logical-zero preparation on a
//! zoned neutral atom architecture and print the schedule, stage by stage.
//!
//! Run with: `cargo run --release --example quickstart`

use nasp::arch::{
    evaluate, render_schedule, validate_schedule, ArchConfig, BoundaryOps, Layout, OpParams,
    StageKind,
};
use nasp::core::{solve, Problem, SolveOptions};
use nasp::qec::{catalog, graph_state};
use nasp::sim::{check_state, run_layers};

fn main() {
    // 1. The QEC code and its state-preparation circuit (STABGRAPH form:
    //    |+>^n, CZ edges, final Hadamards).
    let code = catalog::steane();
    let circuit = graph_state::synthesize(&code.zero_state_stabilizers())
        .expect("catalog codes always synthesize");
    println!(
        "{} code: ⟦{},{},{}⟧, {} CZ gates, {} final Hadamards",
        code.name(),
        code.num_qubits(),
        code.num_logical(),
        code.distance(),
        circuit.num_cz(),
        circuit.hadamards.len()
    );

    // 2. Schedule on the bottom-storage layout (the paper's Layout 2).
    let config = ArchConfig::paper(Layout::BottomStorage);
    let problem = Problem::new(config, &circuit);
    let report = solve(&problem, &SolveOptions::default());
    let optimal = report.is_optimal();
    let schedule = report.schedule.expect("Steane solves in under a second");
    println!(
        "schedule: {} stages ({} Rydberg, {} transfer), optimal = {optimal}",
        schedule.stages.len(),
        schedule.num_rydberg(),
        schedule.num_transfer(),
    );

    // 3. Walk the stages.
    for (t, stage) in schedule.stages.iter().enumerate() {
        match &stage.kind {
            StageKind::Rydberg => {
                let pairs = schedule.executed_pairs(t);
                println!("  stage {t}: Rydberg beam, CZ on {pairs:?}");
            }
            StageKind::Transfer(_) => {
                let (stored, loaded) = schedule.transferred(t);
                println!("  stage {t}: transfer, store {stored:?}, load {loaded:?}");
            }
        }
    }

    // 4. Independent checks: the operational validator and the stabilizer
    //    simulator both accept the schedule.
    let violations = validate_schedule(&schedule, &problem.gates);
    assert!(violations.is_empty(), "validator found {violations:?}");
    let state = run_layers(&circuit, &schedule.cz_layers());
    let check = check_state(&state, &code.zero_state_stabilizers());
    assert!(check.holds_up_to_pauli_frame());
    println!("validated operationally and verified on the tableau simulator ✓");

    // 5. Fidelity metrics (the paper's Table I columns).
    let metrics = evaluate(
        &schedule,
        &OpParams::default(),
        BoundaryOps {
            hadamards: circuit.hadamards.len(),
            phase_gates: circuit.phase_gates.len(),
        },
    );
    println!(
        "execution time {:.3} ms, approximated success probability {:.3}",
        metrics.exec_time_ms(),
        metrics.asp
    );

    // 6. ASCII rendering of the stages (textual version of the paper's
    //    Fig. 2; `[q]` = SLM trap, `(q)` = AOD trap, `~` = storage rows).
    println!("\n{}", render_schedule(&schedule));
}
